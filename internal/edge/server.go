// Package edge implements the paper's offloading server program: the
// process running on a generic edge server that accepts connections from
// client devices, stores pre-sent NN models, executes incoming snapshots on
// the server's browser runtime, and returns result snapshots (§III).
package edge

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"websnap/internal/nn"
	"websnap/internal/obs"
	"websnap/internal/protocol"
	"websnap/internal/sched"
	"websnap/internal/snapshot"
	"websnap/internal/telemetry"
	"websnap/internal/trace"
	"websnap/internal/vmsynth"
	"websnap/internal/webapp"
)

// maxHandlerSteps bounds one offloaded execution burst so a buggy app
// cannot wedge a server goroutine.
const maxHandlerSteps = 1000

// Config parametrizes a Server.
type Config struct {
	// Catalog resolves snapshot code hashes to app code bundles.
	Catalog *webapp.Catalog
	// Installed indicates the offloading system is pre-installed. When
	// false, the server only accepts MsgInstallOverlay until a VM
	// overlay has been synthesized (§III.B.3).
	Installed bool
	// Synthesizer performs VM synthesis for on-demand installation. May
	// be nil when Installed is true.
	Synthesizer *vmsynth.Synthesizer
	// ModelDir, when non-empty, persists pre-sent model files to disk so
	// they survive server restarts ("the server saves the files",
	// §III.B.1).
	ModelDir string
	// MaxStoreBytes bounds the session store (pre-sent models + synced
	// delta bases) in bytes; least-recently-used entries are evicted at
	// the cap. Zero means unbounded (the pre-bounded-store behavior).
	MaxStoreBytes int64
	// MaxStreams caps the concurrent logical offload streams one
	// multiplexed connection may have in flight; further frames wait in
	// the connection's read loop (TCP backpressure is the flow control).
	// Zero selects DefaultMaxStreams.
	MaxStreams int
	// Quality, when set, overrides the quality-tier global of every
	// restored snapshot before execution, forcing offloaded inference to
	// run at this precision regardless of the client's choice — an
	// operator knob for trading result fidelity against server throughput
	// under load. Empty honors whatever tier each snapshot carries.
	Quality nn.Precision
	// MaxQueueBytes bounds the summed decoded size of snapshots waiting
	// in the admission queue; zero means slots-only admission.
	MaxQueueBytes int64
	// MaxConns caps concurrently served client connections; beyond it,
	// new connections receive an error and are closed. Zero means
	// unlimited.
	MaxConns int
	// IdleTimeout closes a connection when no request arrives for this
	// long: it bounds the wait for the FIRST byte of the next frame. Zero
	// means no timeout.
	IdleTimeout time.Duration
	// TransferTimeout bounds the gap between successive reads WITHIN a
	// frame once its first byte has arrived. A multi-MB snapshot upload on
	// a slow link stays alive as long as bytes keep trickling in at least
	// this often; a stalled peer is still cut off. Zero selects
	// IdleTimeout (so a bare IdleTimeout config keeps its old meaning per
	// chunk rather than per frame).
	TransferTimeout time.Duration
	// Workers sizes the scheduler's worker pool. Zero selects
	// DefaultWorkers.
	Workers int
	// QueueDepth bounds the scheduler's admission queue. Zero selects the
	// scheduler default.
	QueueDepth int
	// QueuePolicy selects the overload behavior: reject immediately (the
	// default — saturated servers shed load so clients fall back locally)
	// or block up to QueueWait.
	QueuePolicy sched.Policy
	// QueueWait bounds how long PolicyBlock waits for queue space.
	QueueWait time.Duration
	// MaxBatch caps how many same-model snapshot sessions one worker
	// coalesces into a single batched forward pass. Zero or one disables
	// batching.
	MaxBatch int
	// BatchWindow is how long a worker holds an under-filled batch open
	// for same-model arrivals; zero batches only the already-queued
	// backlog.
	BatchWindow time.Duration
	// Logf receives diagnostic output; nil silences it.
	Logf func(format string, args ...any)
	// Logger, when non-nil, receives structured JSON-line logs. When Logf
	// is nil the legacy printf diagnostics also route through it, so one
	// stream carries everything.
	Logger *obs.Logger
	// TraceLog, when non-nil, receives one JSON line per completed
	// offload request with the server-side span breakdown (decode, queue,
	// execute, encode) — the structured feed behind `edged -trace-log`.
	TraceLog io.Writer
	// Blobs, when non-nil, enables fleet blob sharing: pre-sent model
	// weights and synced snapshot states are published here under their
	// content hashes, advertised on registry heartbeats, and served to
	// peers via MsgBlobGet. cmd/edged wires a fleet.BlobStore.
	Blobs BlobCache
	// Locator finds fleet peers holding a blob (typically a
	// fleet.RegistryClient); nil limits resolution to the local cache.
	Locator BlobLocator
	// AdvertiseAddr is this server's own fleet-advertised address; the
	// peer-fetch path skips it when the blob index lists us as a holder.
	AdvertiseAddr string
	// PeerDial overrides the transport for peer blob fetches (tests and
	// chaos injection); nil means TCP.
	PeerDial func(addr string, timeout time.Duration) (net.Conn, error)
	// SLO, when non-nil, receives every completed offload's server-side
	// total latency; /slo (cmd/edged) serves its burn state and /readyz
	// surfaces it. The server only feeds observations — construction
	// (objective, windows, OnBurn) is the embedder's.
	SLO *telemetry.SLO
	// Flight, when non-nil, captures the span trees of slow, failed, and
	// shed requests in a bounded in-memory ring served at /debug/flight.
	// "Slow" means the server-side total exceeded the SLO objective (no
	// SLO, no slow capture; errors and sheds are captured regardless).
	Flight *telemetry.FlightRecorder
}

// DefaultWorkers is the worker-pool size when Config.Workers is zero.
const DefaultWorkers = 4

// DefaultMaxStreams is the per-connection concurrent-stream cap when
// Config.MaxStreams is zero.
const DefaultMaxStreams = 256

// Server is the edge server's offloading program.
type Server struct {
	cfg   Config
	store *SessionStore
	sched *sched.Scheduler
	logf  func(string, ...any)
	quit  chan struct{}
	wg    sync.WaitGroup
	// reqWG tracks requests between dispatch and response write, so Close
	// can let in-flight sessions flush their final frames before
	// terminating connections.
	reqWG  sync.WaitGroup
	mu     sync.Mutex
	ln     net.Listener
	closed bool

	// soloSeq generates unique batch keys for sessions that must not be
	// coalesced.
	soloSeq atomic.Uint64

	installedMu sync.RWMutex
	installed   bool

	// connSlots is a semaphore bounding concurrent connections; nil when
	// unlimited.
	connSlots chan struct{}

	// connsMu guards conns, the set of live client connections, so Close
	// can terminate them instead of waiting forever on idle readers.
	connsMu sync.Mutex
	conns   map[net.Conn]struct{}

	// rec aggregates server-side stage latencies (queue, execute) across
	// every offload request, for /metrics export.
	rec *trace.Recorder
	// traceLogMu serializes JSON lines onto Config.TraceLog.
	traceLogMu sync.Mutex

	// log is the structured logger (nil-safe); logf remains the printf
	// bridge for legacy call sites.
	log *obs.Logger

	// reg is the server's metrics registry; every counter, gauge, and
	// stage histogram below exposes through it.
	reg *obs.Registry
	// Operation counters, registered on reg (registration order defines
	// exposition order and is part of the scrape contract).
	connsServed, connsRefused         *obs.Counter
	modelsStored                      *obs.Counter
	snapshotsExecuted, deltasExecuted *obs.Counter
	installs, errorsAnswered          *obs.Counter
	// Fleet blob-sharing counters (zero outside a fleet).
	refPreSendHits, refPreSendMisses    *obs.Counter
	blobPeerFetches, blobPeerFetchBytes *obs.Counter
	blobsServed, basesRecovered         *obs.Counter
	// Multiplexing counters: requests dispatched concurrently off a mux
	// connection, and the live concurrent-stream gauge behind them.
	muxRequests *obs.Counter
	muxActive   atomic.Int64

	// Chain relay counters: layer ranges executed as chain hops, boundary
	// tensors relayed downstream, and relays that failed.
	chainExecs, chainRelays, chainRelayFailures *obs.Counter

	// start anchors the uptime reported in telemetry digests.
	start time.Time
}

// Metrics is a snapshot of the server's operation counters.
type Metrics struct {
	// ConnsServed counts accepted (served) connections.
	ConnsServed int64
	// ConnsRefused counts connections turned away at the MaxConns cap.
	ConnsRefused int64
	// ModelsStored counts pre-send requests handled.
	ModelsStored int64
	// SnapshotsExecuted counts full snapshot offloads executed.
	SnapshotsExecuted int64
	// DeltasExecuted counts delta offloads executed.
	DeltasExecuted int64
	// Installs counts completed VM-synthesis installations.
	Installs int64
	// Errors counts requests answered with MsgError.
	Errors int64
	// MuxRequests counts requests dispatched concurrently as multiplexed
	// logical streams (HintMuxV1).
	MuxRequests int64
	// StoreBytes and StoreEvictions mirror the bounded session store: its
	// current byte charge and how many entries the byte cap has evicted.
	StoreBytes     int64
	StoreEvictions int64
}

// Metrics returns a consistent-enough snapshot of the server's counters.
func (s *Server) Metrics() Metrics {
	return Metrics{
		ConnsServed:       s.connsServed.Value(),
		ConnsRefused:      s.connsRefused.Value(),
		ModelsStored:      s.modelsStored.Value(),
		SnapshotsExecuted: s.snapshotsExecuted.Value(),
		DeltasExecuted:    s.deltasExecuted.Value(),
		Installs:          s.installs.Value(),
		Errors:            s.errorsAnswered.Value(),
		MuxRequests:       s.muxRequests.Value(),
		StoreBytes:        s.store.Bytes(),
		StoreEvictions:    s.store.Evictions(),
	}
}

// Registry exposes the server's metrics registry, so embedders can add
// their own families to the same scrape.
func (s *Server) Registry() *obs.Registry { return s.reg }

// initMetrics builds the server's metric families. Registration order is
// the exposition order of the pre-registry handler and must not change:
// existing scrapes depend on it byte-for-byte.
func (s *Server) initMetrics() {
	r := obs.NewRegistry()
	s.reg = r
	s.connsServed = r.Counter("websnap_conns_served_total", "Accepted client connections.")
	s.connsRefused = r.Counter("websnap_conns_refused_total", "Connections refused at the MaxConns cap.")
	s.modelsStored = r.Counter("websnap_models_stored_total", "Model pre-send requests handled.")
	s.snapshotsExecuted = r.Counter("websnap_snapshots_executed_total", "Full snapshot offloads executed.")
	s.deltasExecuted = r.Counter("websnap_deltas_executed_total", "Delta offloads executed.")
	s.installs = r.Counter("websnap_installs_total", "Completed VM-synthesis installations.")
	s.errorsAnswered = r.Counter("websnap_errors_total", "Requests answered with an error frame.")
	r.CounterFunc("websnap_sched_submitted_total", "Tasks admitted to the scheduler queue.",
		func() int64 { return s.sched.Stats().Submitted })
	r.CounterFunc("websnap_sched_rejected_total", "Tasks rejected at admission.",
		func() int64 { return s.sched.Stats().Rejected })
	r.CounterFunc("websnap_sched_executed_total", "Tasks completed.",
		func() int64 { return s.sched.Stats().Executed })
	r.CounterFunc("websnap_sched_batches_total", "Executed batches.",
		func() int64 { return s.sched.Stats().Batches })
	r.GaugeFunc("websnap_installed", "Whether the offloading system is installed (1) or not (0).",
		func() float64 {
			if s.Installed() {
				return 1
			}
			return 0
		})
	r.GaugeFunc("websnap_queue_depth", "Tasks currently waiting in the admission queue.",
		func() float64 { return float64(s.sched.Stats().QueueDepth) })
	r.GaugeFunc("websnap_queue_capacity", "Admission queue capacity.",
		func() float64 { return float64(s.sched.Stats().QueueCap) })
	r.GaugeFunc("websnap_workers", "Worker pool size.",
		func() float64 { return float64(s.sched.Stats().Workers) })
	r.GaugeFunc("websnap_busy_workers", "Workers currently executing a batch.",
		func() float64 { return float64(s.sched.Stats().Busy) })
	r.GaugeFunc("websnap_queueing_delay_seconds", "Estimated queueing delay for a request submitted now.",
		func() float64 { return s.sched.Stats().QueueingDelay().Seconds() })
	stages := r.HistogramVec("websnap_stage_seconds", "Offload pipeline stage latency in seconds.", "stage")
	for _, stage := range trace.AllStages() {
		stages.Attach(s.rec.Stage(stage), string(stage))
	}
	// Fleet families register after everything above: the pre-fleet
	// exposition prefix stays byte-identical for existing scrapes.
	s.refPreSendHits = r.Counter("websnap_ref_presend_hits_total",
		"Reference-only model pre-sends resolved without the client's bytes.")
	s.refPreSendMisses = r.Counter("websnap_ref_presend_misses_total",
		"Reference-only model pre-sends answered NeedBlob (client re-sent in full).")
	s.blobPeerFetches = r.Counter("websnap_blob_peer_fetches_total",
		"Blobs fetched from fleet peers.")
	s.blobPeerFetchBytes = r.Counter("websnap_blob_peer_fetch_bytes_total",
		"Bytes fetched from fleet peers.")
	s.blobsServed = r.Counter("websnap_blobs_served_total",
		"Blob fetches served to fleet peers.")
	s.basesRecovered = r.Counter("websnap_bases_recovered_total",
		"Delta bases recovered from the fleet blob index.")
	// Session-store and multiplexing families register after the fleet
	// block for the same reason: the earlier exposition prefix stays
	// byte-identical for existing scrapes.
	r.GaugeFunc("websnap_store_bytes", "Session store payload bytes (models + synced delta bases).",
		func() float64 { return float64(s.store.Bytes()) })
	r.GaugeFunc("websnap_store_byte_cap", "Session store byte cap (0 = unbounded).",
		func() float64 { return float64(s.store.MaxBytes()) })
	r.GaugeFunc("websnap_store_entries", "Distinct content-addressed payloads in the session store.",
		func() float64 { return float64(s.store.Entries()) })
	r.CounterFunc("websnap_store_evictions_total", "Session-store entries evicted at the byte cap.",
		func() int64 { return s.store.Evictions() })
	r.CounterFunc("websnap_store_compactions_total", "Superseded delta bases released by chain compaction.",
		func() int64 { return s.store.Compactions() })
	r.GaugeFunc("websnap_queue_bytes", "Decoded snapshot bytes waiting in the admission queue.",
		func() float64 { return float64(s.sched.Stats().QueueBytes) })
	s.muxRequests = r.Counter("websnap_mux_requests_total",
		"Requests dispatched concurrently off multiplexed connections.")
	r.GaugeFunc("websnap_mux_streams", "Logical offload streams currently in flight across multiplexed connections.",
		func() float64 { return float64(s.muxActive.Load()) })
	// Chain families register last, after the mux block, keeping every
	// earlier exposition prefix byte-identical for existing scrapes.
	s.chainExecs = r.Counter("websnap_chain_execs_total",
		"Layer ranges executed as multi-hop chain hops.")
	s.chainRelays = r.Counter("websnap_chain_relays_total",
		"Boundary tensors relayed to downstream chain hops.")
	s.chainRelayFailures = r.Counter("websnap_chain_relay_failures_total",
		"Chain relays that failed (downstream unreachable or errored).")
}

// NewServer creates an offloading server.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Catalog == nil {
		return nil, errors.New("edge: nil catalog")
	}
	if !cfg.Installed && cfg.Synthesizer == nil {
		return nil, errors.New("edge: not installed and no synthesizer for on-demand installation")
	}
	logf := cfg.Logf
	if logf == nil {
		if cfg.Logger != nil {
			logf = cfg.Logger.Logf
		} else {
			logf = func(string, ...any) {}
		}
	}
	store := newSessionStore(cfg.MaxStoreBytes)
	if cfg.ModelDir != "" {
		var err error
		store, err = newSessionStoreDir(cfg.ModelDir, cfg.MaxStoreBytes)
		if err != nil {
			return nil, err
		}
	}
	srv := &Server{
		cfg:       cfg,
		store:     store,
		logf:      logf,
		log:       cfg.Logger,
		quit:      make(chan struct{}),
		installed: cfg.Installed,
		conns:     make(map[net.Conn]struct{}),
		rec:       trace.NewRecorder(),
		start:     time.Now(),
	}
	if cfg.MaxConns > 0 {
		srv.connSlots = make(chan struct{}, cfg.MaxConns)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	var err error
	srv.sched, err = sched.New(sched.Config{
		Workers:       workers,
		QueueDepth:    cfg.QueueDepth,
		MaxQueueBytes: cfg.MaxQueueBytes,
		Policy:        cfg.QueuePolicy,
		QueueWait:     cfg.QueueWait,
		MaxBatch:      cfg.MaxBatch,
		BatchWindow:   cfg.BatchWindow,
		Logf:          logf,
	}, srv.execBatch)
	if err != nil {
		return nil, err
	}
	// A session-store eviction must also leave the fleet blob cache, or
	// the next heartbeat would advertise a key we can no longer back.
	store.onEvict = srv.onStoreEvict
	srv.initMetrics()
	return srv, nil
}

// onStoreEvict propagates a session-store eviction to the fleet blob
// cache so evicted keys drop out of the next heartbeat's advertised set.
func (s *Server) onStoreEvict(key string) {
	if d, ok := s.cfg.Blobs.(interface{ Delete(key string) }); ok {
		d.Delete(key)
	}
}

// SchedStats returns the scheduler's current state and counters.
func (s *Server) SchedStats() sched.Stats { return s.sched.Stats() }

// loadHint summarizes the scheduler's state for response headers.
func (s *Server) loadHint() *protocol.LoadHint {
	st := s.sched.Stats()
	return &protocol.LoadHint{
		QueueDepth:        st.QueueDepth,
		QueueCap:          st.QueueCap,
		Workers:           st.Workers,
		Busy:              st.Busy,
		EWMAServiceMillis: float64(st.Service.Mean) / float64(time.Millisecond),
		QueueingMillis:    float64(st.QueueingDelay()) / float64(time.Millisecond),
		Saturated:         st.Saturated(),
	}
}

// hintFor returns the load hint when the request advertised the extension,
// nil otherwise (old clients get byte-identical headers).
func (s *Server) hintFor(hints int) *protocol.LoadHint {
	if hints >= protocol.HintLoadV1 {
		return s.loadHint()
	}
	return nil
}

// Store exposes the server's model store (for tests and inspection).
func (s *Server) Store() *ModelStore { return s.store }

// Installed reports whether the offloading system is ready to serve
// snapshots.
func (s *Server) Installed() bool {
	s.installedMu.RLock()
	defer s.installedMu.RUnlock()
	return s.installed
}

// Ready reports whether the server can execute an offload submitted now:
// the offloading system is installed and the scheduler is accepting work.
// It is the /readyz signal — a live process that is not Ready should be
// taken out of rotation, not restarted.
func (s *Server) Ready() bool {
	return s.Installed() && s.sched.Accepting()
}

// Serve accepts connections on ln until Close is called. It blocks; run it
// in a goroutine and call Close to stop.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("edge: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
				return fmt.Errorf("edge: accept: %w", err)
			}
		}
		if s.connSlots != nil {
			select {
			case s.connSlots <- struct{}{}:
			default:
				// At capacity: refuse politely and move on.
				s.connsRefused.Inc()
				s.wg.Add(1)
				go func() {
					defer s.wg.Done()
					defer conn.Close()
					msg, err := protocol.Encode(protocol.MsgError,
						protocol.ErrorHeader{Message: "edge server at connection capacity"}, nil)
					if err == nil {
						if err := protocol.Write(conn, msg); err != nil {
							s.logf("edge: refuse conn: %v", err)
						}
					}
				}()
				continue
			}
		}
		s.trackConn(conn, true)
		s.connsServed.Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.trackConn(conn, false)
			defer conn.Close()
			if s.connSlots != nil {
				defer func() { <-s.connSlots }()
			}
			s.handleConn(conn)
		}()
	}
}

// Close stops accepting and shuts down gracefully: the scheduler drains —
// in-flight sessions finish, queued ones are cancelled and answered with an
// Error frame — then connections are terminated and all goroutines joined.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.quit)
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	// Drain the scheduler: running batches complete, queued tasks fail
	// with ErrClosed. Their waiting connection handlers then write the
	// final result or Error frame, which reqWG tracks.
	s.sched.Close()
	s.reqWG.Wait()
	// Terminate live connections: without this, Close would wait forever
	// on clients idling in between requests.
	s.connsMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connsMu.Unlock()
	s.wg.Wait()
	return err
}

// trackConn adds or removes a live connection from the close set.
func (s *Server) trackConn(conn net.Conn, add bool) {
	s.connsMu.Lock()
	defer s.connsMu.Unlock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
}

// deadlineReader reads from a net.Conn under two timeout regimes: waiting
// for a frame's first byte is bounded by idle, while each subsequent read —
// once the frame has started arriving — is bounded by transfer. Setting the
// deadline per read (not once per frame) is what keeps a legitimate multi-MB
// upload on a slow link alive: the old single up-front deadline killed any
// transfer whose total time exceeded the idle timeout, no matter how
// steadily bytes were flowing.
type deadlineReader struct {
	conn           net.Conn
	idle, transfer time.Duration
	// inFrame marks that the current frame's first byte has been read, so
	// reads are on the transfer clock until frameDone resets it.
	inFrame bool
}

func (r *deadlineReader) Read(p []byte) (int, error) {
	d := r.idle
	if r.inFrame {
		d = r.transfer
	}
	if d > 0 {
		if err := r.conn.SetReadDeadline(time.Now().Add(d)); err != nil {
			return 0, err
		}
	}
	n, err := r.conn.Read(p)
	if n > 0 {
		r.inFrame = true
	}
	return n, err
}

// frameDone returns the reader to the idle clock for the next frame.
func (r *deadlineReader) frameDone() { r.inFrame = false }

// connWriter serializes response frames onto one connection: in mux mode
// many handler goroutines finish in arbitrary order and interleave whole
// frames under the mutex.
type connWriter struct {
	mu   sync.Mutex
	conn net.Conn
}

func (w *connWriter) write(msg protocol.Message) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return protocol.Write(w.conn, msg)
}

// maxStreams resolves the per-connection concurrent-stream cap.
func (s *Server) maxStreams() int {
	if s.cfg.MaxStreams > 0 {
		return s.cfg.MaxStreams
	}
	return DefaultMaxStreams
}

// handleConn serves one client connection: a sequence of framed requests,
// each answered with exactly one response. Requests advertising HintMuxV1
// carry a stream id and are dispatched concurrently — the response order
// then follows completion, not arrival, and the client demultiplexes by
// the echoed Seq. Requests without the hint are handled inline, strictly
// serially, exactly as before the extension.
func (s *Server) handleConn(conn net.Conn) {
	transfer := s.cfg.TransferTimeout
	if transfer <= 0 {
		transfer = s.cfg.IdleTimeout
	}
	dr := &deadlineReader{conn: conn, idle: s.cfg.IdleTimeout, transfer: transfer}
	cw := &connWriter{conn: conn}
	var streams sync.WaitGroup
	// slots caps this connection's in-flight streams; a full window blocks
	// the read loop, so flow control is the transport's backpressure.
	var slots chan struct{}
	defer streams.Wait()
	for {
		dr.frameDone()
		msg, err := protocol.Read(dr)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrUnexpectedEOF) {
				s.logf("edge: read: %v", err)
			}
			return
		}
		var env protocol.MuxEnvelope
		// An undecodable header dispatches serially; the handler reports
		// the decode error on the connection's single in-order response.
		_ = json.Unmarshal(msg.Header, &env)
		if env.Muxed() {
			if slots == nil {
				slots = make(chan struct{}, s.maxStreams())
			}
			// The stream-semaphore wait is where mux backpressure bites;
			// time it so the per-stream span and the stream_wait stage
			// histogram expose a saturated window.
			waitStart := time.Now()
			slots <- struct{}{}
			streamWait := time.Since(waitStart)
			s.muxRequests.Inc()
			s.muxActive.Add(1)
			streams.Add(1)
			go func(msg protocol.Message, env protocol.MuxEnvelope) {
				defer streams.Done()
				defer s.muxActive.Add(-1)
				defer func() { <-slots }()
				if err := s.serveRequest(cw, msg, env, streamWait); err != nil {
					// The shared socket is broken; close it so the read
					// loop and sibling streams unwind.
					conn.Close()
				}
			}(msg, env)
			continue
		}
		if err := s.serveRequest(cw, msg, env, -1); err != nil {
			return
		}
	}
}

// serveRequest dispatches one request and writes its response, tracked by
// reqWG so Close lets the final frame flush before terminating the
// connection. streamWait is the mux stream-semaphore wait (negative for
// serially dispatched requests, which never queue on the semaphore).
func (s *Server) serveRequest(cw *connWriter, msg protocol.Message, env protocol.MuxEnvelope, streamWait time.Duration) error {
	s.reqWG.Add(1)
	defer s.reqWG.Done()
	resp, err := s.dispatch(msg, streamWait)
	if err != nil {
		s.logf("edge: %s: %v", msg.Type, err)
		s.errorsAnswered.Inc()
		hdr := protocol.ErrorHeader{Message: err.Error()}
		if env.Muxed() {
			hdr.Seq = env.Seq
		}
		var oe *overloadError
		if errors.As(err, &oe) {
			hdr.Message = oe.err.Error()
			hdr.Seq = oe.seq
			hdr.Overloaded = oe.overloaded
			hdr.Load = s.hintFor(oe.hints)
		}
		// A chain failure additionally locates the failed hop so the
		// client's re-planner can exclude it from the next manifest.
		var ce *chainError
		if errors.As(err, &ce) {
			hdr.ChainHop = ce.hop
		}
		s.recordFailure(msg, err, oe)
		resp, err = protocol.Encode(protocol.MsgError, hdr, nil)
		if err != nil {
			return err
		}
	}
	if err := cw.write(resp); err != nil {
		s.logf("edge: write response: %v", err)
		return err
	}
	return nil
}

// overloadError decorates a scheduler admission failure with the request
// context its Error frame needs: the sequence number, the overload marker
// that tells the client to execute locally, and the negotiated hints.
type overloadError struct {
	err        error
	seq        uint64
	overloaded bool
	hints      int
}

func (e *overloadError) Error() string { return e.err.Error() }
func (e *overloadError) Unwrap() error { return e.err }

// recordFailure deposits a failed request in the flight recorder: shed
// requests under the shed reason (the decision mix's load-drop path),
// everything else as an error. The trace ID, when the request carried one,
// joins the entry so operators can line it up with client-side traces.
func (s *Server) recordFailure(msg protocol.Message, err error, oe *overloadError) {
	if s.cfg.Flight == nil {
		return
	}
	reason := telemetry.FlightError
	if oe != nil && oe.overloaded {
		reason = telemetry.FlightShed
	}
	var tid struct {
		TraceID string `json:"traceId"`
	}
	_ = json.Unmarshal(msg.Header, &tid)
	s.cfg.Flight.Record(telemetry.FlightEntry{
		TraceID: tid.TraceID,
		Reason:  reason,
		Note:    string(msg.Type) + ": " + err.Error(),
	})
}

// dispatch routes one request to its handler. streamWait (negative when the
// request was dispatched serially) reaches the snapshot handlers so the
// mux stream-semaphore wait lands in the request's server trace.
func (s *Server) dispatch(msg protocol.Message, streamWait time.Duration) (protocol.Message, error) {
	// Pings work before installation: probes need to learn the install
	// state without tripping an error.
	if msg.Type == protocol.MsgPing {
		return s.handlePing(msg)
	}
	if !s.Installed() && msg.Type != protocol.MsgInstallOverlay {
		return protocol.Message{}, errors.New("offloading system not installed on this edge server")
	}
	switch msg.Type {
	case protocol.MsgModelPreSend:
		return s.handleModelPreSend(msg)
	case protocol.MsgSnapshot:
		return s.handleSnapshot(msg, streamWait)
	case protocol.MsgSnapshotDelta:
		return s.handleSnapshotDelta(msg, streamWait)
	case protocol.MsgInstallOverlay:
		return s.handleInstall(msg)
	case protocol.MsgBlobGet:
		return s.handleBlobGet(msg)
	case protocol.MsgChainExec:
		return s.handleChainExec(msg, streamWait)
	default:
		return protocol.Message{}, fmt.Errorf("unexpected message %s", msg.Type)
	}
}

// handlePing answers a load probe with the server's install state and, when
// negotiated, its scheduling load.
func (s *Server) handlePing(msg protocol.Message) (protocol.Message, error) {
	var hdr protocol.PingHeader
	if err := protocol.DecodeHeader(msg, &hdr); err != nil {
		return protocol.Message{}, err
	}
	pong := protocol.PongHeader{
		Installed: s.Installed(),
		Load:      s.hintFor(hdr.Hints),
		Fleet:     hdr.Hints >= protocol.HintFleetV1 && s.fleetEnabled(),
	}
	if hdr.Hints >= protocol.HintMuxV1 {
		pong.Mux = true
		pong.Seq = hdr.Seq
	}
	if hdr.Hints >= protocol.HintChainV1 {
		pong.Chain = true
	}
	return protocol.Encode(protocol.MsgPong, pong, nil)
}

// decodeModel rebuilds a network from a pre-send header's spec and a
// weight blob.
func decodeModel(hdr protocol.ModelPreSendHeader, weights []byte) (*nn.Network, error) {
	net, err := nn.DecodeSpec(hdr.Spec)
	if err != nil {
		return nil, fmt.Errorf("model %q: %w", hdr.ModelName, err)
	}
	if err := net.DecodeWeights(bytes.NewReader(weights)); err != nil {
		return nil, fmt.Errorf("model %q weights: %w", hdr.ModelName, err)
	}
	return net, nil
}

// handleModelPreSend stores the client's model files and acknowledges, per
// §III.B.1: "The server saves the files and sends an acknowledgement (ACK)
// message to the client." A fleet client may send a reference instead of
// the bytes (RefOnly + BlobKey): the server then resolves the blob from
// its cache or a peer, and answers NeedBlob when it cannot, telling the
// client to retry with the full upload.
func (s *Server) handleModelPreSend(msg protocol.Message) (protocol.Message, error) {
	start := time.Now()
	var hdr protocol.ModelPreSendHeader
	if err := protocol.DecodeHeader(msg, &hdr); err != nil {
		return protocol.Message{}, err
	}
	// A telemetry-capable client propagated its trace through the pre-send
	// hop: collect the fleet-hop spans (registry locate, peer fetches) and
	// parent them under one resolve span answered on the ack.
	var trail *spanTrail
	if hdr.Hints >= protocol.HintTelemetryV1 && hdr.TraceID != "" {
		trail = &spanTrail{traceID: hdr.TraceID}
	}
	resolveSpan := func() *protocol.SpanNode {
		if trail == nil {
			return nil
		}
		return &protocol.SpanNode{
			Op:       "presend_resolve",
			Addr:     s.cfg.AdvertiseAddr,
			Micros:   time.Since(start).Microseconds(),
			Detail:   hdr.BlobKey,
			Children: trail.spans,
		}
	}
	var (
		weights []byte
		net     *nn.Network
		err     error
	)
	if hdr.RefOnly {
		weights, net, err = s.resolveModelBlob(hdr, trail)
		if err != nil {
			s.refPreSendMisses.Inc()
			s.logf("edge: ref pre-send %q (blob %s) unresolved: %v", hdr.ModelName, hdr.BlobKey, err)
			return protocol.Encode(protocol.MsgAck, protocol.AckHeader{
				AppID:     hdr.AppID,
				ModelName: hdr.ModelName,
				Seq:       hdr.Seq,
				Load:      s.hintFor(hdr.Hints),
				NeedBlob:  true,
				Span:      resolveSpan(),
			}, nil)
		}
		s.refPreSendHits.Inc()
	} else {
		if err := protocol.VerifyBody(msg.Body, hdr.BodyCRC); err != nil {
			return protocol.Message{}, fmt.Errorf("model %q weights: %w", hdr.ModelName, err)
		}
		weights = msg.Body
		net, err = decodeModel(hdr, weights)
		if err != nil {
			return protocol.Message{}, err
		}
	}
	if err := s.store.Put(hdr.AppID, hdr.ModelName, net); err != nil {
		// The in-memory copy is in place; persistence failure only
		// affects restarts. Log and keep serving.
		s.logf("edge: persist model %q: %v", hdr.ModelName, err)
	}
	if s.fleetEnabled() {
		key := hdr.BlobKey
		if key == "" {
			key = nn.Fingerprint(net)
		}
		s.cfg.Blobs.Put(key, weights)
	}
	s.modelsStored.Inc()
	s.logf("edge: stored model %q for app %q (%d params, partial=%v, ref=%v)",
		hdr.ModelName, hdr.AppID, net.TotalParams(), hdr.Partial, hdr.RefOnly)
	return protocol.Encode(protocol.MsgAck, protocol.AckHeader{
		AppID:     hdr.AppID,
		ModelName: hdr.ModelName,
		Seq:       hdr.Seq,
		Load:      s.hintFor(hdr.Hints),
		Span:      resolveSpan(),
	}, nil)
}

// restoreApp re-creates a running app from an offloaded snapshot. Models
// absent from the snapshot are attached from the pre-send store so
// delta-reconstructed snapshots (which never list models) execute too.
func (s *Server) restoreApp(snap *snapshot.Snapshot) (*webapp.App, *webapp.Registry, error) {
	registry, ok := s.cfg.Catalog.Lookup(snap.CodeHash)
	if !ok {
		return nil, nil, fmt.Errorf("unknown app code %q", snap.CodeHash)
	}
	app, err := snapshot.Restore(snap, registry, snapshot.RestoreOptions{
		Models: s.store.Resolver(snap.AppID),
	})
	if err != nil {
		return nil, nil, err
	}
	for _, name := range s.store.Names(snap.AppID) {
		if _, loaded := app.Model(name); !loaded {
			if net, ok := s.store.Get(snap.AppID, name); ok {
				app.LoadModel(name, net)
			}
		}
	}
	if s.cfg.Quality != "" {
		if err := webapp.SetQuality(app, s.cfg.Quality); err != nil {
			return nil, nil, err
		}
	}
	return app, registry, nil
}

// captureResult captures the post-execution state and records it as the
// app's synchronized server-side state for delta offloads: one encode
// yields both the store's byte-cap charge and the fleet blob published
// under the state's content hash.
func (s *Server) captureResult(app *webapp.App, appID string) (*snapshot.Snapshot, error) {
	result, err := snapshot.Capture(app, snapshot.Options{DefaultModelPolicy: snapshot.ModelOmit})
	if err != nil {
		return nil, err
	}
	bare := *result
	bare.Models = nil
	data, err := bare.Encode()
	if err != nil {
		s.logf("edge: encode state blob: %v", err)
		return result, nil
	}
	key, err := s.store.PutState(appID, result, int64(len(data)))
	if err != nil {
		s.logf("edge: store state for app %q: %v", appID, err)
		return result, nil
	}
	if s.fleetEnabled() {
		s.cfg.Blobs.Put(key, data)
	}
	return result, nil
}

// executeSnapshot runs one offloaded snapshot on the server's runtime and
// returns the captured result state (§III.A).
func (s *Server) executeSnapshot(snap *snapshot.Snapshot) (*snapshot.Snapshot, error) {
	app, _, err := s.restoreApp(snap)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	steps, err := app.Run(maxHandlerSteps)
	if err != nil {
		return nil, fmt.Errorf("execute snapshot: %w", err)
	}
	s.logf("edge: app %q ran %d handler(s) in %v", snap.AppID, steps, time.Since(start))
	return s.captureResult(app, snap.AppID)
}

// execBatch is the scheduler's executor: one batch of snapshot sessions.
// Multi-task batches (same batch key: same code, same event, byte-identical
// models) run through the app's registered batched handler; anything
// unexpected falls back to per-session execution, which is always correct.
func (s *Server) execBatch(batch []*sched.Task) []sched.Result {
	if len(batch) > 1 {
		if results, ok := s.executeBatched(batch); ok {
			return results
		}
	}
	results := make([]sched.Result, len(batch))
	for i, t := range batch {
		switch p := t.Payload.(type) {
		case *chainWork:
			// A chain hop's layer range; solo-keyed, so never coalesced.
			out, err := p.net.ForwardRange(p.in, p.from, p.to)
			results[i] = sched.Result{Value: out, Err: err}
		default:
			r, err := s.executeSnapshot(t.Payload.(*snapshot.Snapshot))
			results[i] = sched.Result{Value: r, Err: err}
		}
	}
	return results
}

// executeBatched coalesces the batch into one batched handler invocation:
// restore every session, pop the shared pending event from each, run the
// batched handler once, then drain any follow-on events and capture each
// result. ok=false means the batch could not be run coalesced and no app
// state was published; the caller re-executes per session.
func (s *Server) executeBatched(batch []*sched.Task) ([]sched.Result, bool) {
	apps := make([]*webapp.App, len(batch))
	evs := make([]webapp.Event, len(batch))
	var fn webapp.BatchHandlerFunc
	for i, t := range batch {
		snap := t.Payload.(*snapshot.Snapshot)
		app, registry, err := s.restoreApp(snap)
		if err != nil {
			return nil, false
		}
		ev, handler, ok := soleBatchableEvent(app)
		if !ok {
			return nil, false
		}
		bfn, ok := registry.BatchHandler(handler)
		if !ok {
			return nil, false
		}
		if i == 0 {
			fn = bfn
		}
		app.PopEvent()
		apps[i], evs[i] = app, ev
	}
	start := time.Now()
	if err := fn(apps, evs); err != nil {
		s.logf("edge: batched handler failed, re-executing solo: %v", err)
		return nil, false
	}
	s.logf("edge: batched %d session(s) in %v", len(batch), time.Since(start))
	results := make([]sched.Result, len(batch))
	for i, t := range batch {
		snap := t.Payload.(*snapshot.Snapshot)
		if _, err := apps[i].Run(maxHandlerSteps); err != nil {
			results[i] = sched.Result{Err: fmt.Errorf("execute snapshot: %w", err)}
			continue
		}
		r, err := s.captureResult(apps[i], snap.AppID)
		results[i] = sched.Result{Value: r, Err: err}
	}
	return results, true
}

// soleBatchableEvent reports the app's single pending payload-free event and
// the one handler bound to it, the shape a batched execution requires.
func soleBatchableEvent(app *webapp.App) (webapp.Event, string, bool) {
	pending := app.PendingEvents()
	if len(pending) != 1 || pending[0].Payload != nil {
		return webapp.Event{}, "", false
	}
	ev := pending[0]
	handler, matches := "", 0
	for _, b := range app.Bindings() {
		if b.Target == ev.Target && b.Event == ev.Type {
			handler, matches = b.Handler, matches+1
		}
	}
	if matches != 1 {
		return webapp.Event{}, "", false
	}
	return ev, handler, true
}

// soloKey returns a unique batch key, for sessions that must not coalesce.
func (s *Server) soloKey() string {
	return "solo:" + strconv.FormatUint(s.soloSeq.Add(1), 10)
}

// batchKey derives the coalescing key for a snapshot session. Sessions get
// the same key — and may be batched into one forward pass — only when they
// run the same handler of the same code bundle on byte-identical model
// files: the key hashes the code hash, the pending event and its resolved
// handler, the fingerprints of the app's pre-sent models, any models
// shipped inline in the snapshot, and the app's string-valued globals
// (which select the model the handler uses).
func (s *Server) batchKey(snap *snapshot.Snapshot) string {
	ev, handler, ok := batchableSnapshotEvent(snap)
	if !ok {
		return s.soloKey()
	}
	registry, ok := s.cfg.Catalog.Lookup(snap.CodeHash)
	if !ok {
		return s.soloKey()
	}
	if _, ok := registry.BatchHandler(handler); !ok {
		return s.soloKey()
	}
	h := sha256.New()
	for _, part := range []string{snap.CodeHash, ev.Target, ev.Type, handler, s.store.FingerprintSet(snap.AppID)} {
		h.Write([]byte(part))
		h.Write([]byte{0})
	}
	for _, m := range snap.Models {
		h.Write([]byte(m.Name))
		if spec, err := json.Marshal(m.Spec); err == nil {
			h.Write(spec)
		}
		h.Write(m.Weights)
		h.Write([]byte{0})
	}
	var strs []string
	for name, v := range snap.Globals {
		if sv, ok := v.(string); ok {
			strs = append(strs, name+"="+sv)
		}
	}
	sort.Strings(strs)
	for _, kv := range strs {
		h.Write([]byte(kv))
		h.Write([]byte{0})
	}
	return "b:" + hex.EncodeToString(h.Sum(nil)[:12])
}

// batchableSnapshotEvent is soleBatchableEvent evaluated directly on the
// snapshot, before any restore happens.
func batchableSnapshotEvent(snap *snapshot.Snapshot) (webapp.Event, string, bool) {
	if len(snap.Pending) != 1 || snap.Pending[0].Payload != nil {
		return webapp.Event{}, "", false
	}
	ev := snap.Pending[0]
	handler, matches := "", 0
	for _, b := range snap.Bindings {
		if b.Target == ev.Target && b.Event == ev.Type {
			handler, matches = b.Handler, matches+1
		}
	}
	if matches != 1 {
		return webapp.Event{}, "", false
	}
	return ev, handler, true
}

// svcTiming accumulates one request's server-side stage durations as it
// moves through decode, the admission queue, execution, and result encode.
type svcTiming struct {
	decode time.Duration
	queue  time.Duration
	exec   time.Duration
	batch  int
	// encodeStart is stamped by the handler just before result encoding;
	// snapshotResponse closes the span after any compression.
	encodeStart time.Time
	// streamWait is the mux stream-semaphore wait; negative when the
	// request was dispatched serially (there is then no semaphore, so zero
	// would be indistinguishable from an uncontended mux stream).
	streamWait time.Duration
	// spans carries the request's fleet-hop span trail (registry locates,
	// peer fetches during delta base recovery) into the flight recorder.
	spans []*protocol.SpanNode
}

// scheduleSnapshot submits one decoded snapshot session to the scheduler
// and waits for its result. Admission failures are wrapped as overload
// errors so the connection handler can answer with the overload marker and
// load hint that redirect the client to local execution. On success tm (when
// non-nil) receives the task's queue wait, execution time, and batch size.
func (s *Server) scheduleSnapshot(snap *snapshot.Snapshot, hdr protocol.SnapshotHeader, tm *svcTiming, size int64) (*snapshot.Snapshot, error) {
	task := sched.NewTask(s.batchKey(snap), snap)
	task.Bytes = size
	if err := s.sched.Submit(task); err != nil {
		return nil, &overloadError{
			err:        err,
			seq:        hdr.Seq,
			overloaded: errors.Is(err, sched.ErrQueueFull),
			hints:      hdr.Hints,
		}
	}
	v, err := task.Wait()
	if err != nil {
		if errors.Is(err, sched.ErrClosed) {
			return nil, &overloadError{err: err, seq: hdr.Seq, hints: hdr.Hints}
		}
		return nil, err
	}
	if tm != nil {
		tm.queue = task.QueueWait()
		tm.exec = task.ExecTime()
		tm.batch = task.BatchSize()
	}
	return v.(*snapshot.Snapshot), nil
}

// handleSnapshot runs a full offloaded snapshot and returns the full result
// snapshot, mirroring the request's body encoding.
func (s *Server) handleSnapshot(msg protocol.Message, streamWait time.Duration) (protocol.Message, error) {
	var hdr protocol.SnapshotHeader
	if err := protocol.DecodeHeader(msg, &hdr); err != nil {
		return protocol.Message{}, err
	}
	if err := protocol.VerifyBody(msg.Body, hdr.BodyCRC); err != nil {
		return protocol.Message{}, err
	}
	decodeStart := time.Now()
	plain, err := protocol.DecodeBody(msg.Body, hdr.Encoding)
	if err != nil {
		return protocol.Message{}, err
	}
	snap, err := snapshot.Decode(plain)
	if err != nil {
		return protocol.Message{}, err
	}
	tm := &svcTiming{decode: time.Since(decodeStart), streamWait: streamWait}
	result, err := s.scheduleSnapshot(snap, hdr, tm, int64(len(plain)))
	if err != nil {
		return protocol.Message{}, err
	}
	s.snapshotsExecuted.Inc()
	tm.encodeStart = time.Now()
	body, err := result.Encode()
	if err != nil {
		return protocol.Message{}, err
	}
	return s.snapshotResponse(protocol.MsgResultSnapshot, snap.AppID, hdr, body, tm)
}

// snapshotResponse frames a result body, mirroring the request's encoding.
// With tm set it also closes out the request's server-side trace: the spans
// feed the server recorder and trace log unconditionally, and ride back to
// the client in the response header when the request negotiated HintTraceV1.
func (s *Server) snapshotResponse(t protocol.MsgType, appID string, req protocol.SnapshotHeader, body []byte, tm *svcTiming) (protocol.Message, error) {
	encoding := protocol.EncodingRaw
	if req.Encoding == protocol.EncodingFlate {
		compressed, err := protocol.CompressBody(body)
		if err != nil {
			return protocol.Message{}, err
		}
		body = compressed
		encoding = protocol.EncodingFlate
	}
	hdr := protocol.SnapshotHeader{
		AppID: appID, Seq: req.Seq, Encoding: encoding,
		Load: s.hintFor(req.Hints),
	}
	if req.Hints >= protocol.HintCRCV1 {
		hdr.BodyCRC = protocol.BodyChecksum(body)
	}
	if tm != nil {
		encode := time.Since(tm.encodeStart)
		st := &protocol.ServerTrace{
			TraceID:       req.TraceID,
			DecodeMicros:  tm.decode.Microseconds(),
			QueueMicros:   tm.queue.Microseconds(),
			ExecuteMicros: tm.exec.Microseconds(),
			EncodeMicros:  encode.Microseconds(),
			BatchSize:     tm.batch,
		}
		// The mux stream-semaphore wait joins the report only for
		// telemetry-capable clients: the field is omitempty and gated, so
		// older clients' response bytes are unchanged.
		if req.Hints >= protocol.HintTelemetryV1 && tm.streamWait > 0 {
			st.StreamWaitMicros = tm.streamWait.Microseconds()
		}
		s.observeTrace(appID, req.Seq, tm, encode, st)
		if req.Hints >= protocol.HintTraceV1 {
			hdr.ServerTrace = st
		}
	}
	return protocol.Encode(t, hdr, body)
}

// observeTrace folds one completed request's spans into the server's stage
// histograms and, when configured, appends a JSON line to the trace log.
// Decode and encode fold into the execute stage, mirroring how the client
// merges the server report; the full split survives in the trace log.
func (s *Server) observeTrace(appID string, seq uint64, tm *svcTiming, encode time.Duration, st *protocol.ServerTrace) {
	s.rec.Observe(trace.StageQueue, tm.queue)
	s.rec.Observe(trace.StageExecute, tm.decode+tm.exec+encode)
	if tm.streamWait >= 0 {
		s.rec.Observe(trace.StageStreamWait, tm.streamWait)
	}
	total := tm.decode + tm.queue + tm.exec + encode
	if tm.streamWait > 0 {
		total += tm.streamWait
	}
	if s.cfg.SLO != nil {
		s.cfg.SLO.Observe(total)
		// A request that blew the objective is exactly what the flight
		// recorder exists for: capture its full span tree while the SLO
		// burn accounting is still catching up.
		if s.cfg.Flight != nil && total > s.cfg.SLO.Objective() {
			s.cfg.Flight.Record(telemetry.FlightEntry{
				TraceID: st.TraceID,
				Reason:  telemetry.FlightSlow,
				Note:    fmt.Sprintf("app %s seq %d over objective %v", appID, seq, s.cfg.SLO.Objective()),
				Span:    s.serveSpan(appID, tm, encode, total),
			})
		}
	}
	if s.log.Enabled(obs.LevelDebug) {
		s.log.Debug("offload served",
			obs.TraceID(st.TraceID),
			obs.F("appId", appID),
			obs.F("seq", seq),
			obs.F("queueMicros", tm.queue.Microseconds()),
			obs.F("executeMicros", tm.exec.Microseconds()),
			obs.F("batchSize", tm.batch),
		)
	}
	if s.cfg.TraceLog == nil {
		return
	}
	line, err := json.Marshal(struct {
		TraceID string `json:"traceId,omitempty"`
		AppID   string `json:"appId"`
		Seq     uint64 `json:"seq"`
		*protocol.ServerTrace
	}{TraceID: st.TraceID, AppID: appID, Seq: seq, ServerTrace: st})
	if err != nil {
		return
	}
	s.traceLogMu.Lock()
	defer s.traceLogMu.Unlock()
	if _, err := s.cfg.TraceLog.Write(append(line, '\n')); err != nil {
		s.logf("edge: trace log: %v", err)
	}
}

// TraceRecorder exposes the server's aggregated stage histograms.
func (s *Server) TraceRecorder() *trace.Recorder { return s.rec }

// serveSpan renders one request's svcTiming as a span tree: the serve root
// with one child per pipeline stage, plus any fleet-hop spans (registry
// locate, peer fetch) collected while recovering a delta base.
func (s *Server) serveSpan(appID string, tm *svcTiming, encode, total time.Duration) *protocol.SpanNode {
	root := &protocol.SpanNode{
		Op:     "serve",
		Addr:   s.cfg.AdvertiseAddr,
		Micros: total.Microseconds(),
		Detail: appID,
	}
	if tm.streamWait > 0 {
		root.Children = append(root.Children,
			&protocol.SpanNode{Op: "stream_wait", Micros: tm.streamWait.Microseconds()})
	}
	root.Children = append(root.Children,
		&protocol.SpanNode{Op: "decode", Micros: tm.decode.Microseconds()},
		&protocol.SpanNode{Op: "queue", Micros: tm.queue.Microseconds()},
		&protocol.SpanNode{Op: "execute", Micros: tm.exec.Microseconds()},
		&protocol.SpanNode{Op: "encode", Micros: encode.Microseconds()},
	)
	root.Children = append(root.Children, tm.spans...)
	return root
}

// StatsDigest snapshots the server's telemetry for one registry heartbeat:
// every stage histogram in mergeable bucket form, the decision mix, and the
// live queue depth and store charge. cmd/edged wires this as the fleet
// agent's Stats supplier; fleetd merges the digests into fleet-wide
// rollups. Counters are cumulative, so the registry keeping only the latest
// digest per member loses nothing.
func (s *Server) StatsDigest() *protocol.StatsDigest {
	src := telemetry.DigestSource{
		Recorder: s.rec,
		Decisions: func() map[string]uint64 {
			m := s.Metrics()
			st := s.sched.Stats()
			return map[string]uint64{
				"snapshot_full":  uint64(m.SnapshotsExecuted),
				"snapshot_delta": uint64(m.DeltasExecuted),
				"shed":           uint64(st.Rejected),
				"error":          uint64(m.Errors),
				"ref_hit":        uint64(s.refPreSendHits.Value()),
				"ref_miss":       uint64(s.refPreSendMisses.Value()),
				"peer_fetch":     uint64(s.blobPeerFetches.Value()),
				"base_recovered": uint64(s.basesRecovered.Value()),
			}
		},
		QueueDepth: func() int { return s.sched.Stats().QueueDepth },
		StoreBytes: func() int64 { return s.store.Bytes() },
		Start:      s.start,
	}
	return src.Digest()
}

// handleSnapshotDelta runs an offload shipped as a delta against the state
// left at the server by the previous offload (§VI), and answers with a
// result delta relative to the reconstructed pre-execution state.
func (s *Server) handleSnapshotDelta(msg protocol.Message, streamWait time.Duration) (protocol.Message, error) {
	var hdr protocol.SnapshotHeader
	if err := protocol.DecodeHeader(msg, &hdr); err != nil {
		return protocol.Message{}, err
	}
	if err := protocol.VerifyBody(msg.Body, hdr.BodyCRC); err != nil {
		return protocol.Message{}, err
	}
	decodeStart := time.Now()
	plain, err := protocol.DecodeBody(msg.Body, hdr.Encoding)
	if err != nil {
		return protocol.Message{}, err
	}
	delta, err := snapshot.DecodeDelta(plain)
	if err != nil {
		return protocol.Message{}, err
	}
	// Base recovery crosses fleet hops; propagate the request's trace
	// through them when the client negotiated telemetry.
	var trail *spanTrail
	if hdr.Hints >= protocol.HintTelemetryV1 && hdr.TraceID != "" {
		trail = &spanTrail{traceID: hdr.TraceID}
	}
	base, ok := s.store.GetState(delta.AppID)
	if !ok && s.fleetEnabled() {
		// A roaming session's previous server published the synced state
		// under its content hash; adopt it instead of failing the delta.
		if recovered, rerr := s.recoverBase(delta.AppID, delta.BaseHash, trail); rerr == nil {
			base, ok = recovered, true
		} else {
			s.logf("edge: delta base %s for app %q not in fleet: %v", delta.BaseHash, delta.AppID, rerr)
		}
	}
	if !ok {
		return protocol.Message{}, fmt.Errorf("%w: no state for app %q at this server",
			snapshot.ErrBaseMismatch, delta.AppID)
	}
	preExec, err := delta.Apply(base)
	if err != nil && s.fleetEnabled() && errors.Is(err, snapshot.ErrBaseMismatch) {
		// The stored state is from another session generation; the fleet
		// may hold the exact base this delta wants.
		if recovered, rerr := s.recoverBase(delta.AppID, delta.BaseHash, trail); rerr == nil {
			preExec, err = delta.Apply(recovered)
		}
	}
	if err != nil {
		return protocol.Message{}, err
	}
	tm := &svcTiming{decode: time.Since(decodeStart), streamWait: streamWait}
	if trail != nil {
		tm.spans = trail.spans
	}
	result, err := s.scheduleSnapshot(preExec, hdr, tm, int64(len(plain)))
	if err != nil {
		return protocol.Message{}, err
	}
	s.deltasExecuted.Inc()
	tm.encodeStart = time.Now()
	resultDelta, err := snapshot.Diff(preExec, result)
	if err != nil {
		return protocol.Message{}, err
	}
	body, err := resultDelta.Encode()
	if err != nil {
		return protocol.Message{}, err
	}
	return s.snapshotResponse(protocol.MsgResultDelta, delta.AppID, hdr, body, tm)
}

// handleInstall performs on-demand installation by VM synthesis: the client
// ships a VM overlay containing the offloading system; once synthesized,
// the server is customized and starts serving offload requests (§III.B.3).
func (s *Server) handleInstall(msg protocol.Message) (protocol.Message, error) {
	var hdr protocol.InstallOverlayHeader
	if err := protocol.DecodeHeader(msg, &hdr); err != nil {
		return protocol.Message{}, err
	}
	if s.Installed() {
		return protocol.Encode(protocol.MsgInstallDone,
			protocol.InstallDoneHeader{SynthesisMillis: 0, Seq: hdr.Seq}, nil)
	}
	if s.cfg.Synthesizer == nil {
		return protocol.Message{}, errors.New("no synthesizer available")
	}
	res, err := s.cfg.Synthesizer.Synthesize(hdr.BaseImage, msg.Body)
	if err != nil {
		return protocol.Message{}, fmt.Errorf("vm synthesis: %w", err)
	}
	s.installedMu.Lock()
	s.installed = true
	s.installedMu.Unlock()
	s.installs.Inc()
	s.logf("edge: installed offloading system via VM synthesis (%v)", res.SynthesisTime)
	return protocol.Encode(protocol.MsgInstallDone, protocol.InstallDoneHeader{
		BaseImage:       hdr.BaseImage,
		SynthesisMillis: res.SynthesisTime.Milliseconds(),
		Seq:             hdr.Seq,
	}, nil)
}

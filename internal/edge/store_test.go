package edge

import (
	"os"
	"path/filepath"
	"testing"

	"websnap/internal/mlapp"
	"websnap/internal/snapshot"
	"websnap/internal/webapp"
)

func TestModelStorePersistence(t *testing.T) {
	dir := t.TempDir()
	store, err := NewModelStoreDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	model := tinyModel(t, "tiny")
	if err := store.Put("app/with:odd chars", "model name", model); err != nil {
		t.Fatalf("Put: %v", err)
	}

	// A second store on the same directory (server restart) sees it.
	restarted, err := NewModelStoreDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := restarted.Get("app/with:odd chars", "model name")
	if !ok {
		t.Fatal("model lost across restart")
	}
	if got.TotalParams() != model.TotalParams() {
		t.Errorf("params %d != %d", got.TotalParams(), model.TotalParams())
	}
	// Weights survive bit-exactly.
	a := model.Layers()[1].Params()[0].Data()
	b := got.Layers()[1].Params()[0].Data()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("weights differ at %d", i)
		}
	}
	if names := restarted.Names("app/with:odd chars"); len(names) != 1 || names[0] != "model name" {
		t.Errorf("Names = %v", names)
	}
}

func TestModelStoreDirCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	appDir := filepath.Join(dir, "app")
	if err := os.MkdirAll(appDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(appDir, "m"+specSuffix), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewModelStoreDir(dir); err == nil {
		t.Error("corrupt spec file should fail the load")
	}
}

func TestModelStoreDirMissingWeights(t *testing.T) {
	dir := t.TempDir()
	store, err := NewModelStoreDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put("a", "m", tinyModel(t, "tiny")); err != nil {
		t.Fatal(err)
	}
	// Remove the weight blob; reload must fail loudly rather than serve
	// a zeroed model.
	if err := os.Remove(filepath.Join(dir, "a", "m"+weightsSuffix)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewModelStoreDir(dir); err == nil {
		t.Error("missing weights should fail the load")
	}
}

// TestServerRestartKeepsModels exercises the full flow: pre-send to a
// disk-backed server, restart it, and offload WITHOUT pre-sending again.
func TestServerRestartKeepsModels(t *testing.T) {
	dir := t.TempDir()
	model := tinyModel(t, "tiny")
	img := mlapp.SyntheticImage(3*16*16, 77)
	want := localResult(t, model, img)

	// First server instance: receive the model.
	_, addr1 := startServer(t, Config{Installed: true, ModelDir: dir})
	conn1 := dial(t, addr1)
	if err := conn1.PreSendModel("app-persist", "tiny", model, false); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server process over the same model directory.
	_, addr2 := startServer(t, Config{Installed: true, ModelDir: dir})
	app, err := mlapp.NewFullApp("app-persist", "tiny", model, tinyLabels)
	if err != nil {
		t.Fatal(err)
	}
	// The model was uploaded in an earlier session; this session ships a
	// spec-only snapshot directly and the restarted server resolves the
	// weights from disk.
	if err := mlapp.LoadImage(app, img); err != nil {
		t.Fatal(err)
	}
	conn2 := dial(t, addr2)
	snap, err := snapshot.Capture(app, snapshot.Options{
		DefaultModelPolicy: snapshot.ModelSpecOnly,
		PendingEvent:       &webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick},
	})
	if err != nil {
		t.Fatal(err)
	}
	wire, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	resultWire, _, err := conn2.OffloadSnapshot("app-persist", wire, false)
	if err != nil {
		t.Fatalf("offload against restarted server: %v", err)
	}
	result, err := snapshot.Decode(resultWire)
	if err != nil {
		t.Fatal(err)
	}
	if err := result.ApplyTo(app, snapshot.RestoreOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := mlapp.Result(app); got != want {
		t.Errorf("result = %q, want %q", got, want)
	}
}

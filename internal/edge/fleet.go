package edge

import (
	"errors"
	"fmt"
	"net"
	"time"

	"websnap/internal/nn"
	"websnap/internal/protocol"
	"websnap/internal/snapshot"
	"websnap/internal/trace"
)

// The edge server participates in a fleet through two narrow interfaces
// instead of importing the fleet package (whose tests import edge): a
// content-addressed cache it publishes into and serves peers from, and a
// locator that maps blob keys to peer addresses. cmd/edged wires these to
// fleet.BlobStore and fleet.RegistryClient.

// BlobCache is a content-addressed blob cache (fleet.BlobStore implements
// it). Keys are nn.Fingerprint for model weight blobs and Snapshot.Hash
// for synced-state blobs.
type BlobCache interface {
	Put(key string, data []byte)
	Get(key string) ([]byte, bool)
	Keys() []string
}

// BlobLocator reports which fleet peers hold each blob key
// (fleet.RegistryClient implements it).
type BlobLocator interface {
	Locate(keys []string) (map[string][]string, error)
}

// tracedLocator is the optional telemetry upgrade of BlobLocator
// (fleet.RegistryClient implements it): the locate propagates the
// request's trace ID through the registry hop and returns the registry's
// span for the merged tree. Discovered by interface assertion so edge
// keeps not importing fleet.
type tracedLocator interface {
	LocateTraced(keys []string, traceID string) (map[string][]string, *protocol.SpanNode, error)
}

// spanTrail accumulates the fleet-hop spans of one traced request as it
// crosses processes: registry locates and peer fetches append their
// SpanNodes here, and the request handler parents them all under one root
// carried back on the response. A nil trail means the requester did not
// negotiate HintTelemetryV1; the hops still happen, they just aren't
// reported.
type spanTrail struct {
	traceID string
	spans   []*protocol.SpanNode
}

// add appends a span to the trail (nil-safe).
func (t *spanTrail) add(n *protocol.SpanNode) {
	if t != nil && n != nil {
		t.spans = append(t.spans, n)
	}
}

// id returns the propagated trace ID ("" for untraced requests).
func (t *spanTrail) id() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// peerFetchTimeout bounds one peer-to-peer blob fetch (dial + request +
// transfer).
const peerFetchTimeout = 5 * time.Second

// errBlobUnavailable reports a blob neither cached locally nor fetchable
// from any peer; the pre-send path answers it with a NeedBlob ack so the
// client re-sends the bytes.
var errBlobUnavailable = errors.New("edge: blob unavailable in fleet")

// fleetEnabled reports whether this server shares blobs with a fleet.
func (s *Server) fleetEnabled() bool { return s.cfg.Blobs != nil }

// LoadHint returns the server's current scheduling load, as advertised on
// response headers and registry heartbeats.
func (s *Server) LoadHint() *protocol.LoadHint { return s.loadHint() }

// BlobKeys returns the content-addressed keys this server currently holds
// — the set a registry heartbeat advertises, hot (recently used) end
// first so a capped advertisement keeps the keys peers most likely want.
// Nil when fleet sharing is disabled.
func (s *Server) BlobKeys() []string {
	if !s.fleetEnabled() {
		return nil
	}
	if mru, ok := s.cfg.Blobs.(interface{ KeysMRU(max int) []string }); ok {
		return mru.KeysMRU(0)
	}
	return s.cfg.Blobs.Keys()
}

// resolveBlob returns the blob for key from the local cache or, failing
// that, from a fleet peer found through the locator. verify (optional)
// judges candidate bytes BEFORE they are cached or returned — content
// verification must happen inside the holder loop, because the blob index
// lags evictions and a stale or corrupt first holder must not end the
// search while the remaining holders can still satisfy it. Peer-fetched
// blobs are cached, so the next heartbeat advertises them and later
// requests and peers are served locally.
func (s *Server) resolveBlob(key string, trail *spanTrail, verify func([]byte) error) ([]byte, error) {
	if !s.fleetEnabled() {
		return nil, errBlobUnavailable
	}
	if data, ok := s.cfg.Blobs.Get(key); ok {
		if verify == nil {
			return data, nil
		}
		if err := verify(data); err == nil {
			return data, nil
		} else {
			// A local copy failing content verification should be
			// impossible (keys are content hashes); fall through to the
			// fleet rather than serving bytes we cannot vouch for.
			s.logf("edge: local blob %s failed verification: %v", key, err)
		}
	}
	if s.cfg.Locator == nil {
		return nil, errBlobUnavailable
	}
	holders, err := s.locateBlob(key, trail)
	if err != nil {
		return nil, fmt.Errorf("%w: locate: %v", errBlobUnavailable, err)
	}
	var lastErr error
	for _, addr := range holders[key] {
		if addr == s.cfg.AdvertiseAddr {
			continue // the index may lag our own evictions
		}
		data, err := s.fetchBlobFromPeer(addr, key, trail)
		if err == nil && verify != nil {
			err = verify(data)
		}
		if err != nil {
			lastErr = err
			s.logf("edge: blob %s from peer %s: %v", key, addr, err)
			continue
		}
		s.cfg.Blobs.Put(key, data)
		s.blobPeerFetches.Inc()
		s.blobPeerFetchBytes.Add(int64(len(data)))
		return data, nil
	}
	if lastErr != nil {
		return nil, fmt.Errorf("%w: %v", errBlobUnavailable, lastErr)
	}
	return nil, errBlobUnavailable
}

// locateBlob asks the locator which peers hold key, propagating the
// request's trace through the registry hop when both sides support it.
// The hop's round trip feeds the StageRegistry histogram either way.
func (s *Server) locateBlob(key string, trail *spanTrail) (map[string][]string, error) {
	start := time.Now()
	var (
		holders map[string][]string
		span    *protocol.SpanNode
		err     error
	)
	if tl, ok := s.cfg.Locator.(tracedLocator); ok && trail.id() != "" {
		holders, span, err = tl.LocateTraced([]string{key}, trail.id())
	} else {
		holders, err = s.cfg.Locator.Locate([]string{key})
	}
	rtt := time.Since(start)
	s.rec.Observe(trace.StageRegistry, rtt)
	if err != nil {
		return nil, err
	}
	if trail != nil {
		if span == nil {
			// The locator predates the telemetry extension; record the hop
			// from this side so the tree still shows it.
			span = &protocol.SpanNode{Op: "registry_rpc", Micros: rtt.Microseconds()}
		}
		span.Detail = key
		trail.add(span)
	}
	return holders, nil
}

// fetchBlobFromPeer performs one MsgBlobGet round trip against another
// edge server and verifies the returned bytes against the frame checksum.
// Content identity (the bytes actually hashing to key) is verified by the
// caller where the decoded form is at hand. A traced fetch (trail != nil)
// propagates the trace ID to the peer and nests the peer's serve span
// under this hop's round-trip span.
func (s *Server) fetchBlobFromPeer(addr, key string, trail *spanTrail) ([]byte, error) {
	start := time.Now()
	body, remote, err := s.doFetchBlob(addr, key, trail.id())
	rtt := time.Since(start)
	s.rec.Observe(trace.StagePeerFetch, rtt)
	if trail != nil {
		span := &protocol.SpanNode{
			Op:     "peer_fetch",
			Addr:   addr,
			Micros: rtt.Microseconds(),
			Detail: key,
		}
		if err != nil {
			span.Detail = key + " error: " + err.Error()
		}
		if remote != nil {
			span.Children = []*protocol.SpanNode{remote}
		}
		trail.add(span)
	}
	return body, err
}

// doFetchBlob is the wire round trip of fetchBlobFromPeer.
func (s *Server) doFetchBlob(addr, key, traceID string) ([]byte, *protocol.SpanNode, error) {
	dial := s.cfg.PeerDial
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	conn, err := dial(addr, peerFetchTimeout)
	if err != nil {
		return nil, nil, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(peerFetchTimeout)); err != nil {
		return nil, nil, err
	}
	get := protocol.BlobGetHeader{Key: key, Hints: protocol.HintFleetV1}
	if traceID != "" {
		get.Hints = protocol.HintTelemetryV1
		get.TraceID = traceID
	}
	req, err := protocol.Encode(protocol.MsgBlobGet, get, nil)
	if err != nil {
		return nil, nil, err
	}
	if err := protocol.Write(conn, req); err != nil {
		return nil, nil, err
	}
	resp, err := protocol.Read(conn)
	if err != nil {
		return nil, nil, err
	}
	if resp.Type == protocol.MsgError {
		var eh protocol.ErrorHeader
		if err := protocol.DecodeHeader(resp, &eh); err != nil {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("peer %s: %s", addr, eh.Message)
	}
	if resp.Type != protocol.MsgBlobData {
		return nil, nil, fmt.Errorf("peer %s: unexpected reply %s", addr, resp.Type)
	}
	var hdr protocol.BlobDataHeader
	if err := protocol.DecodeHeader(resp, &hdr); err != nil {
		return nil, nil, err
	}
	if hdr.Key != key {
		return nil, hdr.Span, fmt.Errorf("peer %s: sent blob %s, want %s", addr, hdr.Key, key)
	}
	if err := protocol.VerifyBody(resp.Body, hdr.BodyCRC); err != nil {
		return nil, hdr.Span, fmt.Errorf("peer %s: %w", addr, err)
	}
	return resp.Body, hdr.Span, nil
}

// handleBlobGet serves a peer's content-addressed fetch from the local
// blob cache.
func (s *Server) handleBlobGet(msg protocol.Message) (protocol.Message, error) {
	start := time.Now()
	var hdr protocol.BlobGetHeader
	if err := protocol.DecodeHeader(msg, &hdr); err != nil {
		return protocol.Message{}, err
	}
	if !s.fleetEnabled() {
		return protocol.Message{}, errors.New("blob sharing not enabled on this edge server")
	}
	data, ok := s.cfg.Blobs.Get(hdr.Key)
	if !ok {
		return protocol.Message{}, fmt.Errorf("blob %s not held here", hdr.Key)
	}
	s.blobsServed.Inc()
	resp := protocol.BlobDataHeader{
		Key:     hdr.Key,
		BodyCRC: protocol.BodyChecksum(data),
	}
	if hdr.Hints >= protocol.HintTelemetryV1 && hdr.TraceID != "" {
		// The fetching peer propagated a trace: answer with this server's
		// serve span so the requester's tree covers this process too. Old
		// peers get byte-identical headers (omitempty field).
		resp.Span = &protocol.SpanNode{
			Op:     "blob_serve",
			Addr:   s.cfg.AdvertiseAddr,
			Micros: time.Since(start).Microseconds(),
			Detail: hdr.Key,
		}
	}
	return protocol.Encode(protocol.MsgBlobData, resp, data)
}

// recoverBase resolves a delta's base snapshot from the fleet blob index:
// the session's previous server published the synced state under its
// content hash. Each candidate's decoded snapshot is verified against the
// requested hash inside the fetch loop, so a stale holder does not end the
// search.
func (s *Server) recoverBase(appID, baseHash string, trail *spanTrail) (*snapshot.Snapshot, error) {
	var snap *snapshot.Snapshot
	data, err := s.resolveBlob(baseHash, trail, func(body []byte) error {
		decoded, err := snapshot.Decode(body)
		if err != nil {
			return fmt.Errorf("decode fleet base %s: %w", baseHash, err)
		}
		hash, err := decoded.Hash()
		if err != nil {
			return err
		}
		if hash != baseHash {
			return fmt.Errorf("fleet base %s decoded to %s", baseHash, hash)
		}
		snap = decoded
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.basesRecovered.Inc()
	if _, err := s.store.PutState(appID, snap, int64(len(data))); err != nil {
		return nil, err
	}
	s.logf("edge: recovered delta base %s for app %q from fleet", baseHash, appID)
	return snap, nil
}

// resolveModelBlob resolves a reference-only model pre-send: the weight
// bytes come from the local cache or a peer, and the rebuilt model must
// hash back to the advertised key (spec and weights both feed
// nn.Fingerprint, so a wrong or tampered blob cannot be installed). The
// check runs per candidate holder, so one bad or stale peer cannot end
// the search while others still hold the real bytes.
func (s *Server) resolveModelBlob(hdr protocol.ModelPreSendHeader, trail *spanTrail) ([]byte, *nn.Network, error) {
	if hdr.BlobKey == "" {
		return nil, nil, errors.New("reference pre-send without blob key")
	}
	var net *nn.Network
	body, err := s.resolveBlob(hdr.BlobKey, trail, func(body []byte) error {
		decoded, err := decodeModel(hdr, body)
		if err != nil {
			return err
		}
		if got := nn.Fingerprint(decoded); got != hdr.BlobKey {
			return fmt.Errorf("blob %s rebuilt model fingerprints to %s", hdr.BlobKey, got)
		}
		net = decoded
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return body, net, nil
}

// Chain relay: the edge server's role in multi-hop partial inference.
// A MsgChainExec frame carries the full hop manifest plus this hop's
// position; the server executes its layer range on the pre-sent model,
// then either answers with the output tensor (terminal hop) or relays the
// boundary tensor to the next hop and forwards that hop's result upstream
// unchanged, grafting the downstream span subtree under its own so the
// client ends up with one parented trace: client root → hop1 → hop2 → …
package edge

import (
	"errors"
	"fmt"
	"net"
	"time"

	"websnap/internal/nn"
	"websnap/internal/protocol"
	"websnap/internal/sched"
	"websnap/internal/tensor"
	"websnap/internal/trace"
)

// chainRelayTimeout bounds one hop-to-hop relay round trip (dial, send,
// downstream execution of the whole remaining chain, response). Generous
// because it covers every downstream hop, not just the next one.
const chainRelayTimeout = 15 * time.Second

// chainError locates a chain failure for the client's re-planner: hop is
// the 1-based manifest index of the hop that failed. A relay that cannot
// reach its downstream reports the downstream's index; an error answered
// by a deeper hop keeps that hop's own index as it propagates upstream.
type chainError struct {
	err error
	hop int
}

func (e *chainError) Error() string { return e.err.Error() }
func (e *chainError) Unwrap() error { return e.err }

// chainWork is the scheduler payload of one chain hop's layer range; it
// always rides a solo batch key (boundary tensors of distinct chains are
// never coalescible).
type chainWork struct {
	net      *nn.Network
	in       *tensor.Tensor
	from, to int
}

// handleChainExec executes this server's layer range of a multi-hop chain
// and relays or answers. streamWait is the mux stream-semaphore wait
// (negative for serial dispatch), folded into the hop's span like any
// other offload.
func (s *Server) handleChainExec(msg protocol.Message, streamWait time.Duration) (protocol.Message, error) {
	start := time.Now()
	var hdr protocol.ChainExecHeader
	if err := protocol.DecodeHeader(msg, &hdr); err != nil {
		return protocol.Message{}, err
	}
	if hdr.Hop < 0 || hdr.Hop >= len(hdr.Hops) {
		return protocol.Message{}, fmt.Errorf("chain: hop %d out of manifest range %d", hdr.Hop, len(hdr.Hops))
	}
	// Failures from here on are attributable to this hop (1-based).
	self := hdr.Hop + 1
	fail := func(err error) (protocol.Message, error) {
		return protocol.Message{}, &chainError{err: err, hop: self}
	}
	if err := protocol.VerifyBody(msg.Body, hdr.BodyCRC); err != nil {
		return fail(err)
	}
	hop := hdr.Hops[hdr.Hop]
	if hop.From < 0 || hop.From >= hop.To {
		return fail(fmt.Errorf("chain: hop %d has empty layer range [%d, %d)", self, hop.From, hop.To))
	}
	vals, err := protocol.BytesFloat32(msg.Body)
	if err != nil {
		return fail(err)
	}
	in, err := tensor.FromSlice(vals, hdr.Shape...)
	if err != nil {
		return fail(fmt.Errorf("chain: boundary tensor: %w", err))
	}
	model, ok := s.store.Get(hdr.AppID, hdr.ModelName)
	if !ok {
		return fail(fmt.Errorf("chain: model %q not pre-sent for app %q", hdr.ModelName, hdr.AppID))
	}
	out, queued, execed, err := s.scheduleChainRange(model, in, hop, hdr)
	if err != nil {
		// Keep any overload marker AND the hop attribution: the client
		// re-plans around a saturated mid-chain server the same way it
		// does around a dead one.
		return fail(err)
	}
	s.chainExecs.Inc()
	span := &protocol.SpanNode{
		Op:     "chain_exec",
		Addr:   s.cfg.AdvertiseAddr,
		Detail: fmt.Sprintf("%s layers [%d,%d)", hdr.ModelName, hop.From, hop.To),
		Children: []*protocol.SpanNode{
			{Op: "queue", Micros: queued.Microseconds()},
			{Op: "execute", Micros: execed.Microseconds()},
		},
	}
	if streamWait > 0 {
		span.Children = append([]*protocol.SpanNode{
			{Op: "stream_wait", Micros: streamWait.Microseconds()}}, span.Children...)
	}
	// Chain hops reuse the queue/execute stage histograms: a relay's layer
	// range is queued and executed like any offload, and the exposition
	// contract forbids inserting new stage labels mid-family.
	s.rec.Observe(trace.StageQueue, queued)
	s.rec.Observe(trace.StageExecute, execed)

	resp := protocol.ChainResultHeader{
		Seq:  hdr.Seq,
		Load: s.hintFor(hdr.Hints),
	}
	wantSpan := hdr.Hints >= protocol.HintTelemetryV1 && hdr.TraceID != ""
	if hdr.Hop == len(hdr.Hops)-1 {
		// Terminal hop: answer with the final output tensor.
		body := protocol.Float32Bytes(out.Data())
		resp.Shape = out.Shape()
		if hdr.Hints >= protocol.HintCRCV1 {
			resp.BodyCRC = protocol.BodyChecksum(body)
		}
		if wantSpan {
			span.Micros = time.Since(start).Microseconds()
			resp.Span = span
		}
		return protocol.Encode(protocol.MsgChainResult, resp, body)
	}
	// Mid-chain: relay the boundary tensor to the next hop and forward its
	// result upstream byte-for-byte (re-encoding would risk the chain's
	// bit-identity bar for no gain).
	down, downHdr, err := s.relayChain(out, hdr)
	if err != nil {
		s.chainRelayFailures.Inc()
		var ce *chainError
		if errors.As(err, &ce) {
			// A deeper hop already attributed the failure; propagate as-is.
			return protocol.Message{}, err
		}
		// Transport-level failure reaching the downstream hop: report the
		// downstream's index so the re-planner excludes the right server.
		return protocol.Message{}, &chainError{err: err, hop: self + 1}
	}
	s.chainRelays.Inc()
	resp.Shape = downHdr.Shape
	resp.BodyCRC = downHdr.BodyCRC
	if wantSpan {
		if downHdr.Span != nil {
			span.Children = append(span.Children, downHdr.Span)
		}
		span.Micros = time.Since(start).Microseconds()
		resp.Span = span
	}
	return protocol.Encode(protocol.MsgChainResult, resp, down)
}

// scheduleChainRange submits one hop's layer range to the scheduler under a
// solo key and waits for the output tensor. Admission failures come back as
// overload errors so the client sees the same saturated-server signal as a
// snapshot offload.
func (s *Server) scheduleChainRange(model *nn.Network, in *tensor.Tensor, hop protocol.ChainHop, hdr protocol.ChainExecHeader) (*tensor.Tensor, time.Duration, time.Duration, error) {
	task := sched.NewTask(s.soloKey(), &chainWork{net: model, in: in, from: hop.From, to: hop.To})
	task.Bytes = int64(4 * in.Len())
	if err := s.sched.Submit(task); err != nil {
		return nil, 0, 0, &overloadError{
			err:        err,
			seq:        hdr.Seq,
			overloaded: errors.Is(err, sched.ErrQueueFull),
			hints:      hdr.Hints,
		}
	}
	v, err := task.Wait()
	if err != nil {
		if errors.Is(err, sched.ErrClosed) {
			return nil, 0, 0, &overloadError{err: err, seq: hdr.Seq, hints: hdr.Hints}
		}
		return nil, 0, 0, err
	}
	return v.(*tensor.Tensor), task.QueueWait(), task.ExecTime(), nil
}

// relayChain sends the boundary tensor to the next hop over a dedicated
// peer connection and returns the downstream result body and header. An
// error answered by the downstream propagates as a chainError carrying the
// deepest failed hop's index.
func (s *Server) relayChain(boundary *tensor.Tensor, hdr protocol.ChainExecHeader) ([]byte, protocol.ChainResultHeader, error) {
	next := hdr.Hops[hdr.Hop+1]
	dial := s.cfg.PeerDial
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	conn, err := dial(next.Addr, chainRelayTimeout)
	if err != nil {
		return nil, protocol.ChainResultHeader{}, fmt.Errorf("chain: dial next hop %s: %w", next.Addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(chainRelayTimeout))
	body := protocol.Float32Bytes(boundary.Data())
	req := protocol.ChainExecHeader{
		AppID:     hdr.AppID,
		ModelName: hdr.ModelName,
		Seq:       hdr.Seq,
		Hints:     hdr.Hints,
		Hop:       hdr.Hop + 1,
		Hops:      hdr.Hops,
		Shape:     boundary.Shape(),
		TraceID:   hdr.TraceID,
	}
	if hdr.Hints >= protocol.HintCRCV1 {
		req.BodyCRC = protocol.BodyChecksum(body)
	}
	msg, err := protocol.Encode(protocol.MsgChainExec, req, body)
	if err != nil {
		return nil, protocol.ChainResultHeader{}, err
	}
	if err := protocol.Write(conn, msg); err != nil {
		return nil, protocol.ChainResultHeader{}, fmt.Errorf("chain: relay to %s: %w", next.Addr, err)
	}
	resp, err := protocol.Read(conn)
	if err != nil {
		return nil, protocol.ChainResultHeader{}, fmt.Errorf("chain: read from %s: %w", next.Addr, err)
	}
	if resp.Type == protocol.MsgError {
		var eh protocol.ErrorHeader
		if derr := protocol.DecodeHeader(resp, &eh); derr == nil {
			failed := eh.ChainHop
			if failed == 0 {
				failed = hdr.Hop + 2 // downstream itself, 1-based
			}
			return nil, protocol.ChainResultHeader{}, &chainError{
				err: fmt.Errorf("chain: hop %s: %s", next.Addr, eh.Message),
				hop: failed,
			}
		}
		return nil, protocol.ChainResultHeader{}, fmt.Errorf("chain: hop %s answered an undecodable error", next.Addr)
	}
	if resp.Type != protocol.MsgChainResult {
		return nil, protocol.ChainResultHeader{}, fmt.Errorf("chain: hop %s answered %s", next.Addr, resp.Type)
	}
	var rh protocol.ChainResultHeader
	if err := protocol.DecodeHeader(resp, &rh); err != nil {
		return nil, protocol.ChainResultHeader{}, err
	}
	if err := protocol.VerifyBody(resp.Body, rh.BodyCRC); err != nil {
		return nil, protocol.ChainResultHeader{}, fmt.Errorf("chain: result from %s: %w", next.Addr, err)
	}
	return resp.Body, rh, nil
}

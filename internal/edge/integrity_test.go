package edge

import (
	"bytes"
	"net"
	"strings"
	"testing"

	"websnap/internal/mlapp"
	"websnap/internal/nn"
	"websnap/internal/protocol"
	"websnap/internal/snapshot"
	"websnap/internal/webapp"
)

// rawRequest sends one framed request and returns the raw response.
func rawRequest(t *testing.T, addr string, req protocol.Message) protocol.Message {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := protocol.Write(c, req); err != nil {
		t.Fatal(err)
	}
	resp, err := protocol.Read(c)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// encodeClickSnapshot captures a ready-to-offload click snapshot.
func encodeClickSnapshot(t *testing.T, appID string, model *nn.Network) []byte {
	t.Helper()
	app, err := mlapp.NewFullApp(appID, "tiny", model, tinyLabels)
	if err != nil {
		t.Fatal(err)
	}
	if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, 5)); err != nil {
		t.Fatal(err)
	}
	ev := webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick}
	snap, err := snapshot.Capture(app, snapshot.Options{PendingEvent: &ev})
	if err != nil {
		t.Fatal(err)
	}
	wire, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// TestSnapshotChecksumRejected is a regression test: a snapshot body that
// fails its header checksum must be answered with a typed checksum error and
// must never reach the scheduler — a single flipped bit in the feature
// array would otherwise execute and return a plausible-but-wrong result.
func TestSnapshotChecksumRejected(t *testing.T) {
	srv, addr := startServer(t, Config{Installed: true})
	wire := encodeClickSnapshot(t, "crc-app", tinyModel(t, "tiny"))
	sum := protocol.BodyChecksum(wire)
	wire[len(wire)/2] ^= 0x04 // corrupt after checksumming

	req, err := protocol.Encode(protocol.MsgSnapshot, protocol.SnapshotHeader{
		AppID: "crc-app", Seq: 1, Hints: protocol.HintCRCV1, BodyCRC: sum,
	}, wire)
	if err != nil {
		t.Fatal(err)
	}
	resp := rawRequest(t, addr, req)
	if resp.Type != protocol.MsgError {
		t.Fatalf("response type = %s, want error", resp.Type)
	}
	var hdr protocol.ErrorHeader
	if err := protocol.DecodeHeader(resp, &hdr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hdr.Message, "checksum") {
		t.Errorf("error message %q does not name the checksum", hdr.Message)
	}
	if m := srv.Metrics(); m.SnapshotsExecuted != 0 {
		t.Errorf("corrupted snapshot was executed (%d executions)", m.SnapshotsExecuted)
	}
}

// TestModelPreSendChecksumRejected: corrupted model weights must be refused
// before they are stored.
func TestModelPreSendChecksumRejected(t *testing.T) {
	srv, addr := startServer(t, Config{Installed: true})
	model := tinyModel(t, "tiny")
	spec, err := nn.EncodeSpec(model)
	if err != nil {
		t.Fatal(err)
	}
	var weights bytes.Buffer
	if err := model.EncodeWeights(&weights); err != nil {
		t.Fatal(err)
	}
	blob := weights.Bytes()
	sum := protocol.BodyChecksum(blob)
	blob[7] ^= 0x80

	req, err := protocol.Encode(protocol.MsgModelPreSend, protocol.ModelPreSendHeader{
		AppID: "crc-app", ModelName: "tiny", Spec: spec, BodyCRC: sum,
	}, blob)
	if err != nil {
		t.Fatal(err)
	}
	resp := rawRequest(t, addr, req)
	if resp.Type != protocol.MsgError {
		t.Fatalf("response type = %s, want error", resp.Type)
	}
	if m := srv.Metrics(); m.ModelsStored != 0 {
		t.Errorf("corrupted model was stored (%d stores)", m.ModelsStored)
	}
	if _, ok := srv.Store().Get("crc-app", "tiny"); ok {
		t.Error("corrupted model present in the store")
	}
}

// TestResponseChecksumGatedOnHint checks the CRC extension's negotiation:
// clients advertising HintCRCV1 get a checksummed response body, older
// clients get a header without the field.
func TestResponseChecksumGatedOnHint(t *testing.T) {
	_, addr := startServer(t, Config{Installed: true})
	model := tinyModel(t, "tiny")

	offload := func(hints int) protocol.SnapshotHeader {
		wire := encodeClickSnapshot(t, "crc-gate", model)
		hdr := protocol.SnapshotHeader{AppID: "crc-gate", Seq: 1, Hints: hints}
		if hints >= protocol.HintCRCV1 {
			hdr.BodyCRC = protocol.BodyChecksum(wire)
		}
		req, err := protocol.Encode(protocol.MsgSnapshot, hdr, wire)
		if err != nil {
			t.Fatal(err)
		}
		resp := rawRequest(t, addr, req)
		if resp.Type != protocol.MsgError {
			var rh protocol.SnapshotHeader
			if err := protocol.DecodeHeader(resp, &rh); err != nil {
				t.Fatal(err)
			}
			if err := protocol.VerifyBody(resp.Body, rh.BodyCRC); err != nil {
				t.Fatalf("response failed its own checksum: %v", err)
			}
			return rh
		}
		t.Fatalf("offload with hints=%d answered with error", hints)
		return protocol.SnapshotHeader{}
	}

	if hdr := offload(protocol.HintCRCV1); hdr.BodyCRC == 0 {
		t.Error("HintCRCV1 request: response carries no checksum")
	}
	if hdr := offload(protocol.HintTraceV1); hdr.BodyCRC != 0 {
		t.Error("pre-CRC client received a checksum field")
	}
}

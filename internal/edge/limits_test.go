package edge

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"websnap/internal/client"
	"websnap/internal/mlapp"
	"websnap/internal/webapp"
)

// TestMaxConnsRefusesExcess: beyond the configured connection cap, new
// clients receive a clean "at capacity" error instead of hanging.
func TestMaxConnsRefusesExcess(t *testing.T) {
	_, addr := startServer(t, Config{Installed: true, MaxConns: 1})
	model := tinyModel(t, "tiny")

	// First connection occupies the only slot (the slot is taken at
	// accept time, before any request).
	conn1 := dial(t, addr)
	if err := conn1.PreSendModel("app-1", "tiny", model, false); err != nil {
		t.Fatalf("first conn: %v", err)
	}

	// Second connection must be refused on its first request.
	conn2 := dial(t, addr)
	err := conn2.PreSendModel("app-2", "tiny", model, false)
	if !errors.Is(err, client.ErrServerError) || !strings.Contains(err.Error(), "capacity") {
		t.Errorf("err = %v, want at-capacity server error", err)
	}

	// Releasing the first connection frees the slot.
	conn1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn3 := dial(t, addr)
		if err := conn3.PreSendModel("app-3", "tiny", model, false); err == nil {
			conn3.Close()
			break
		}
		conn3.Close()
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after close")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMaxConnsServesUpToCap: exactly MaxConns clients work concurrently.
func TestMaxConnsServesUpToCap(t *testing.T) {
	const capacity = 3
	_, addr := startServer(t, Config{Installed: true, MaxConns: capacity})
	model := tinyModel(t, "tiny")
	var wg sync.WaitGroup
	errs := make([]error, capacity)
	for i := 0; i < capacity; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := client.Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer conn.Close()
			errs[i] = conn.PreSendModel("app", "tiny", model, false)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d within cap failed: %v", i, err)
		}
	}
}

// TestServerMetrics: the operation counters reflect the traffic served.
func TestServerMetrics(t *testing.T) {
	srv, addr := startServer(t, Config{Installed: true, MaxConns: 1})
	model := tinyModel(t, "tiny")

	conn := dial(t, addr)
	app, err := mlapp.NewFullApp("app-metrics", "tiny", model, tinyLabels)
	if err != nil {
		t.Fatal(err)
	}
	off, err := client.NewOffloader(app, conn, client.Options{
		OffloadEventTypes: []string{mlapp.EventClick},
		Models:            []client.ModelToSend{{Name: "tiny", Net: model}},
		EnableDelta:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	off.StartPreSend()
	if err := off.WaitForAcks(); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 2; seed++ {
		if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, seed)); err != nil {
			t.Fatal(err)
		}
		app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
		if _, err := off.Run(10); err != nil {
			t.Fatal(err)
		}
	}
	// A second connection is refused at the cap.
	refused := dial(t, addr)
	if err := refused.PreSendModel("x", "tiny", model, false); err == nil {
		t.Fatal("expected capacity refusal")
	}

	m := srv.Metrics()
	if m.ConnsServed != 1 || m.ConnsRefused != 1 {
		t.Errorf("conns served/refused = %d/%d, want 1/1", m.ConnsServed, m.ConnsRefused)
	}
	if m.ModelsStored != 1 {
		t.Errorf("models stored = %d, want 1", m.ModelsStored)
	}
	if m.SnapshotsExecuted != 1 || m.DeltasExecuted != 1 {
		t.Errorf("snapshots/deltas = %d/%d, want 1/1", m.SnapshotsExecuted, m.DeltasExecuted)
	}
	if m.Errors != 0 {
		t.Errorf("errors = %d, want 0 (refusals are counted separately)", m.Errors)
	}
}

// TestMetricsHandler: the HTTP observability surface serves the counters.
func TestMetricsHandler(t *testing.T) {
	srv, addr := startServer(t, Config{Installed: true})
	conn := dial(t, addr)
	if err := conn.PreSendModel("app", "tiny", tinyModel(t, "tiny"), false); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var payload struct {
		Installed bool    `json:"installed"`
		Metrics   Metrics `json:"metrics"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if !payload.Installed {
		t.Error("installed should be true")
	}
	if payload.Metrics.ModelsStored != 1 {
		t.Errorf("models stored = %d, want 1", payload.Metrics.ModelsStored)
	}

	rec = httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", rec.Code)
	}
}

// TestCloseWithLiveConnection is a regression test: Close must terminate
// idle client connections instead of blocking forever on their readers.
func TestCloseWithLiveConnection(t *testing.T) {
	srv, err := NewServer(Config{Catalog: testCatalog(t), Installed: true})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	conn := dial(t, ln.Addr().String())
	if err := conn.PreSendModel("app", "tiny", tinyModel(t, "tiny"), false); err != nil {
		t.Fatal(err)
	}
	// The connection stays open and idle; Close must still return.
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a live idle connection")
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestIdleTimeoutClosesConnection: a connection that stays silent past the
// idle timeout is closed by the server; an active one keeps working.
func TestIdleTimeoutClosesConnection(t *testing.T) {
	_, addr := startServer(t, Config{Installed: true, IdleTimeout: 100 * time.Millisecond})
	model := tinyModel(t, "tiny")

	idle := dial(t, addr)
	if err := idle.PreSendModel("app-idle", "tiny", model, false); err != nil {
		t.Fatalf("initial request: %v", err)
	}
	time.Sleep(300 * time.Millisecond)
	if err := idle.PreSendModel("app-idle", "tiny2", model, false); err == nil {
		t.Error("request after idle timeout should fail (connection closed)")
	}

	// An active connection within the timeout keeps working.
	active := dial(t, addr)
	for i := 0; i < 5; i++ {
		app, err := mlapp.NewFullApp("app-active", "tiny", model, tinyLabels)
		if err != nil {
			t.Fatal(err)
		}
		off, err := client.NewOffloader(app, active, client.Options{
			OffloadEventTypes: []string{mlapp.EventClick},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, uint64(i))); err != nil {
			t.Fatal(err)
		}
		app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
		if _, err := off.Run(10); err != nil {
			t.Fatalf("active conn round %d: %v", i, err)
		}
		time.Sleep(30 * time.Millisecond) // well within the timeout
	}
}

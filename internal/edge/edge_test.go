package edge

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"websnap/internal/client"
	"websnap/internal/mlapp"
	"websnap/internal/models"
	"websnap/internal/nn"
	"websnap/internal/snapshot"
	"websnap/internal/vmsynth"
	"websnap/internal/webapp"
)

// testCatalog returns a catalog holding both mlapp code bundles.
func testCatalog(t *testing.T) *webapp.Catalog {
	t.Helper()
	cat := webapp.NewCatalog()
	if err := cat.Add(mlapp.FullRegistry()); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(mlapp.PartialRegistry()); err != nil {
		t.Fatal(err)
	}
	return cat
}

// startServer runs an installed edge server on a loopback listener and
// returns it with its address; cleanup is registered on t.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.Catalog == nil {
		cfg.Catalog = testCatalog(t)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve returned: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func dial(t *testing.T, addr string) *client.Conn {
	t.Helper()
	conn, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func tinyModel(t *testing.T, name string) *nn.Network {
	t.Helper()
	net, err := models.BuildTinyNet(name, 3)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

var tinyLabels = []string{"cat", "dog", "bird"}

// localResult runs the same app entirely locally and returns the result.
func localResult(t *testing.T, model *nn.Network, img webapp.Float32Array) string {
	t.Helper()
	app, err := mlapp.NewFullApp("ref", "tiny", model, tinyLabels)
	if err != nil {
		t.Fatal(err)
	}
	if err := mlapp.LoadImage(app, img); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
	if _, err := app.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := mlapp.Result(app); got != "" {
		return got
	}
	t.Fatal("local reference produced no result")
	return ""
}

// TestOffloadAfterACK is the paper's main configuration: pre-send the
// model, wait for the ACK, then offload the inference event. The client
// must see the same result as local execution, and the shipped snapshot
// must be small (spec-only).
func TestOffloadAfterACK(t *testing.T) {
	_, addr := startServer(t, Config{Installed: true})
	conn := dial(t, addr)

	model := tinyModel(t, "tiny")
	img := mlapp.SyntheticImage(3*16*16, 1)
	want := localResult(t, model, img)

	app, err := mlapp.NewFullApp("app-after-ack", "tiny", model, tinyLabels)
	if err != nil {
		t.Fatal(err)
	}
	off, err := client.NewOffloader(app, conn, client.Options{
		OffloadEventTypes: []string{mlapp.EventClick},
		Models:            []client.ModelToSend{{Name: "tiny", Net: model}},
	})
	if err != nil {
		t.Fatal(err)
	}
	off.StartPreSend()
	if err := off.WaitForAcks(); err != nil {
		t.Fatalf("pre-send: %v", err)
	}
	if !off.ModelAcked("tiny") {
		t.Fatal("model not acked")
	}

	if err := mlapp.LoadImage(app, img); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
	if _, err := off.Run(10); err != nil {
		t.Fatalf("offloaded run: %v", err)
	}
	if got := mlapp.Result(app); got != want {
		t.Errorf("offloaded result = %q, want %q", got, want)
	}
	st := off.Stats()
	if st.Offloads != 1 {
		t.Errorf("offloads = %d, want 1", st.Offloads)
	}
	if st.LastModelIncluded {
		t.Error("snapshot after ACK should not include model weights")
	}
	// The result text must also be visible in the DOM the server updated.
	if node := app.DOM().Find(mlapp.ResultID); node == nil || node.Text != want {
		t.Error("DOM not updated by result snapshot")
	}
	// Real-path phase timing (Fig 7 counterpart) must be populated.
	timing := st.LastTiming
	if timing.CaptureEncode <= 0 || timing.RoundTrip <= 0 || timing.DecodeApply <= 0 {
		t.Errorf("timing not populated: %+v", timing)
	}
	if timing.InlineModelSend != 0 {
		t.Errorf("post-ACK offload should not ship models inline: %+v", timing)
	}
	if timing.Total() != timing.CaptureEncode+timing.RoundTrip+timing.DecodeApply {
		t.Error("Timing.Total inconsistent")
	}
}

// TestOffloadBeforeACK: no pre-sending; the snapshot must carry the model
// weights and still produce the right result (slower but correct).
func TestOffloadBeforeACK(t *testing.T) {
	_, addr := startServer(t, Config{Installed: true})
	conn := dial(t, addr)

	model := tinyModel(t, "tiny")
	img := mlapp.SyntheticImage(3*16*16, 2)
	want := localResult(t, model, img)

	app, err := mlapp.NewFullApp("app-before-ack", "tiny", model, tinyLabels)
	if err != nil {
		t.Fatal(err)
	}
	off, err := client.NewOffloader(app, conn, client.Options{
		OffloadEventTypes: []string{mlapp.EventClick},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mlapp.LoadImage(app, img); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
	if _, err := off.Run(10); err != nil {
		t.Fatalf("offloaded run: %v", err)
	}
	if got := mlapp.Result(app); got != want {
		t.Errorf("result = %q, want %q", got, want)
	}
	if st := off.Stats(); !st.LastModelIncluded {
		t.Error("snapshot before ACK should include model weights")
	}
}

// TestSnapshotSizeShrinksAfterACK compares the two configurations' total
// shipped bytes — the quantity behind Table 1's with/without pre-sending
// rows: the pre-ACK offload must additionally carry the model files.
func TestSnapshotSizeShrinksAfterACK(t *testing.T) {
	_, addr := startServer(t, Config{Installed: true})

	model := tinyModel(t, "tiny")
	img := mlapp.SyntheticImage(3*16*16, 3)
	run := func(preSend bool) int64 {
		conn := dial(t, addr)
		app, err := mlapp.NewFullApp(fmt.Sprintf("app-size-%v", preSend), "tiny", model, tinyLabels)
		if err != nil {
			t.Fatal(err)
		}
		opts := client.Options{OffloadEventTypes: []string{mlapp.EventClick}}
		if preSend {
			opts.Models = []client.ModelToSend{{Name: "tiny", Net: model}}
		}
		off, err := client.NewOffloader(app, conn, opts)
		if err != nil {
			t.Fatal(err)
		}
		if preSend {
			off.StartPreSend()
			if err := off.WaitForAcks(); err != nil {
				t.Fatal(err)
			}
		}
		if err := mlapp.LoadImage(app, img); err != nil {
			t.Fatal(err)
		}
		app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
		if _, err := off.Run(10); err != nil {
			t.Fatal(err)
		}
		st := off.Stats()
		return st.LastSnapshotBytes + st.LastInlineModelBytes
	}
	withPre := run(true)
	withoutPre := run(false)
	if withPre >= withoutPre {
		t.Errorf("post-ACK offload (%d B) should ship less than pre-ACK offload (%d B)",
			withPre, withoutPre)
	}
}

// TestPartialInferenceFlow exercises Fig 5: front() runs locally, the
// snapshot ships denatured feature data (not the image), rear() runs at the
// server, and only the rear model was ever pre-sent.
func TestPartialInferenceFlow(t *testing.T) {
	srv, addr := startServer(t, Config{Installed: true})
	conn := dial(t, addr)

	model := tinyModel(t, "tiny")
	img := mlapp.SyntheticImage(3*16*16, 4)
	want := localResult(t, model, img)

	const splitIndex = 3 // through pool1: ">= one layer" privacy constraint holds
	app, err := mlapp.NewPartialApp("app-partial", "tiny", model, splitIndex, tinyLabels)
	if err != nil {
		t.Fatal(err)
	}
	rear, ok := app.Model("tiny" + mlapp.RearSuffix)
	if !ok {
		t.Fatal("rear model missing")
	}
	off, err := client.NewOffloader(app, conn, client.Options{
		OffloadEventTypes: []string{mlapp.EventFrontComplete},
		Models: []client.ModelToSend{
			{Name: "tiny" + mlapp.RearSuffix, Net: rear, Partial: true},
		},
		ExcludeModels: []string{"tiny" + mlapp.FrontSuffix},
	})
	if err != nil {
		t.Fatal(err)
	}
	off.StartPreSend()
	if err := off.WaitForAcks(); err != nil {
		t.Fatal(err)
	}

	if err := mlapp.LoadImage(app, img); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
	if _, err := off.Run(10); err != nil {
		t.Fatalf("partial run: %v", err)
	}
	if got := mlapp.Result(app); got != want {
		t.Errorf("partial result = %q, want %q (full inference)", got, want)
	}

	// Privacy: the server only ever stored the rear model, and the raw
	// image was dropped before the snapshot left the client.
	if _, ok := srv.Store().Get("app-partial", "tiny"+mlapp.FrontSuffix); ok {
		t.Error("front model must never reach the server")
	}
	if _, ok := srv.Store().Get("app-partial", "tiny"+mlapp.RearSuffix); !ok {
		t.Error("rear model should be stored at the server")
	}
	if v, _ := app.Global(mlapp.GlobalImage); v != nil {
		t.Error("image global should be nil after front()")
	}
}

// TestUnknownCodeHash: a snapshot whose app bundle the server does not know
// must produce a clean server error.
func TestUnknownCodeHash(t *testing.T) {
	// Server with an empty catalog.
	_, addr := startServer(t, Config{Installed: true, Catalog: webapp.NewCatalog()})
	conn := dial(t, addr)

	model := tinyModel(t, "tiny")
	app, err := mlapp.NewFullApp("app-x", "tiny", model, tinyLabels)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := snapshot.Capture(app, snapshot.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wire, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = conn.OffloadSnapshot("app-x", wire, false)
	if !errors.Is(err, client.ErrServerError) {
		t.Errorf("err = %v, want ErrServerError", err)
	}
	if err != nil && !strings.Contains(err.Error(), "unknown app code") {
		t.Errorf("err = %v, want mention of unknown app code", err)
	}
}

// TestOnDemandInstallation: a server without the offloading system rejects
// offloads until a VM overlay has been synthesized (§III.B.3), then serves
// normally.
func TestOnDemandInstallation(t *testing.T) {
	syn := vmsynth.NewSynthesizer(vmsynth.BaseImage{Name: "ubuntu-12.04", Bytes: 1 << 30})
	_, addr := startServer(t, Config{Installed: false, Synthesizer: syn})
	conn := dial(t, addr)

	model := tinyModel(t, "tiny")

	// Pre-send before installation must fail.
	if err := conn.PreSendModel("app-i", "tiny", model, false); !errors.Is(err, client.ErrServerError) {
		t.Fatalf("pre-send before install = %v, want ErrServerError", err)
	}

	// Ship an overlay (real compressed bytes at a reduced scale).
	data := []byte(strings.Repeat("offloading-system-binaries", 4096))
	overlay, err := vmsynth.BuildOverlay(vmsynth.Component{
		Name: "system", RawBytes: int64(len(data)), CompressRatio: 0.4, Data: data,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.InstallOverlay("ubuntu-12.04", overlay.Compressed); err != nil {
		t.Fatalf("install: %v", err)
	}

	// Now the normal flow works.
	img := mlapp.SyntheticImage(3*16*16, 5)
	want := localResult(t, model, img)
	app, err := mlapp.NewFullApp("app-i", "tiny", model, tinyLabels)
	if err != nil {
		t.Fatal(err)
	}
	off, err := client.NewOffloader(app, conn, client.Options{
		OffloadEventTypes: []string{mlapp.EventClick},
		Models:            []client.ModelToSend{{Name: "tiny", Net: model}},
	})
	if err != nil {
		t.Fatal(err)
	}
	off.StartPreSend()
	if err := off.WaitForAcks(); err != nil {
		t.Fatal(err)
	}
	if err := mlapp.LoadImage(app, img); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
	if _, err := off.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := mlapp.Result(app); got != want {
		t.Errorf("result = %q, want %q", got, want)
	}
}

// TestInstallWrongBaseImage: synthesis against a base image the server does
// not have must fail.
func TestInstallWrongBaseImage(t *testing.T) {
	syn := vmsynth.NewSynthesizer(vmsynth.BaseImage{Name: "ubuntu-12.04", Bytes: 1})
	_, addr := startServer(t, Config{Installed: false, Synthesizer: syn})
	conn := dial(t, addr)
	data := []byte(strings.Repeat("x", 1024))
	overlay, err := vmsynth.BuildOverlay(vmsynth.Component{
		Name: "system", RawBytes: int64(len(data)), CompressRatio: 0.5, Data: data,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.InstallOverlay("debian-99", overlay.Compressed); !errors.Is(err, client.ErrServerError) {
		t.Errorf("err = %v, want ErrServerError", err)
	}
}

// TestLocalFallback: when the edge server is unreachable, the offloader
// executes the event locally (the paper's "better for the client to execute
// the DNN locally" observation made operational).
func TestLocalFallback(t *testing.T) {
	_, addr := startServer(t, Config{Installed: true})
	conn := dial(t, addr)
	conn.Close() // sever the link before offloading

	model := tinyModel(t, "tiny")
	img := mlapp.SyntheticImage(3*16*16, 6)
	want := localResult(t, model, img)

	app, err := mlapp.NewFullApp("app-fb", "tiny", model, tinyLabels)
	if err != nil {
		t.Fatal(err)
	}
	off, err := client.NewOffloader(app, conn, client.Options{
		OffloadEventTypes: []string{mlapp.EventClick},
		LocalFallback:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mlapp.LoadImage(app, img); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
	if _, err := off.Run(10); err != nil {
		t.Fatalf("fallback run: %v", err)
	}
	if got := mlapp.Result(app); got != want {
		t.Errorf("fallback result = %q, want %q", got, want)
	}
	st := off.Stats()
	if st.LocalFallbacks != 1 || st.Offloads != 0 {
		t.Errorf("stats = %+v, want 1 fallback, 0 offloads", st)
	}
}

// TestOffloadErrorWithoutFallback surfaces the failure when fallback is
// disabled.
func TestOffloadErrorWithoutFallback(t *testing.T) {
	_, addr := startServer(t, Config{Installed: true})
	conn := dial(t, addr)
	conn.Close()

	model := tinyModel(t, "tiny")
	app, err := mlapp.NewFullApp("app-nf", "tiny", model, tinyLabels)
	if err != nil {
		t.Fatal(err)
	}
	off, err := client.NewOffloader(app, conn, client.Options{
		OffloadEventTypes: []string{mlapp.EventClick},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, 7)); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
	if _, err := off.Run(10); err == nil {
		t.Error("offload over dead connection should fail without fallback")
	}
}

// TestServerHandoff: snapshot-based offloading has no dependence on the
// previous server (§I) — after switching to a brand-new edge server, the
// client can continue offloading immediately.
func TestServerHandoff(t *testing.T) {
	_, addr1 := startServer(t, Config{Installed: true})
	_, addr2 := startServer(t, Config{Installed: true})

	model := tinyModel(t, "tiny")
	img := mlapp.SyntheticImage(3*16*16, 8)
	want := localResult(t, model, img)

	app, err := mlapp.NewFullApp("app-move", "tiny", model, tinyLabels)
	if err != nil {
		t.Fatal(err)
	}
	if err := mlapp.LoadImage(app, img); err != nil {
		t.Fatal(err)
	}

	runOn := func(addr string) string {
		conn := dial(t, addr)
		off, err := client.NewOffloader(app, conn, client.Options{
			OffloadEventTypes: []string{mlapp.EventClick},
		})
		if err != nil {
			t.Fatal(err)
		}
		app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
		if _, err := off.Run(10); err != nil {
			t.Fatalf("offload to %s: %v", addr, err)
		}
		return mlapp.Result(app)
	}
	if got := runOn(addr1); got != want {
		t.Errorf("server 1 result = %q, want %q", got, want)
	}
	// The second server has never seen this app or model: the snapshot
	// alone must be enough.
	if got := runOn(addr2); got != want {
		t.Errorf("server 2 result = %q, want %q", got, want)
	}
}

// TestConcurrentClients: the edge server handles parallel sessions from
// independent client devices.
func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t, Config{Installed: true})
	model := tinyModel(t, "tiny")

	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = func() error {
				conn, err := client.Dial(addr)
				if err != nil {
					return err
				}
				defer conn.Close()
				img := mlapp.SyntheticImage(3*16*16, uint64(100+i))
				app, err := mlapp.NewFullApp(fmt.Sprintf("app-c%d", i), "tiny", model, tinyLabels)
				if err != nil {
					return err
				}
				off, err := client.NewOffloader(app, conn, client.Options{
					OffloadEventTypes: []string{mlapp.EventClick},
					Models:            []client.ModelToSend{{Name: "tiny", Net: model}},
				})
				if err != nil {
					return err
				}
				off.StartPreSend()
				if err := off.WaitForAcks(); err != nil {
					return err
				}
				if err := mlapp.LoadImage(app, img); err != nil {
					return err
				}
				app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
				if _, err := off.Run(10); err != nil {
					return err
				}
				if mlapp.Result(app) == "" {
					return errors.New("no result")
				}
				return nil
			}()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
}

func TestModelStore(t *testing.T) {
	s := NewModelStore()
	if _, ok := s.Get("a", "m"); ok {
		t.Error("empty store should miss")
	}
	m := tinyModel(t, "m")
	s.Put("a", "m", m)
	if got, ok := s.Get("a", "m"); !ok || got != m {
		t.Error("store lookup failed")
	}
	if _, ok := s.Get("b", "m"); ok {
		t.Error("models must be scoped per app")
	}
	res := s.Resolver("a")
	if got, ok := res.ResolveModel("m"); !ok || got != m {
		t.Error("resolver failed")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Error("nil catalog should fail")
	}
	if _, err := NewServer(Config{Catalog: webapp.NewCatalog(), Installed: false}); err == nil {
		t.Error("uninstalled server without synthesizer should fail")
	}
}

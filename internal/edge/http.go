package edge

import (
	"encoding/json"
	"net/http"
)

// MetricsHandler serves the server's operation counters as JSON — a small
// observability surface for operators of edge-server fleets.
//
//	mux := http.NewServeMux()
//	mux.Handle("/metrics", srv.MetricsHandler())
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		payload := struct {
			Installed bool    `json:"installed"`
			Metrics   Metrics `json:"metrics"`
		}{
			Installed: s.Installed(),
			Metrics:   s.Metrics(),
		}
		if err := json.NewEncoder(w).Encode(payload); err != nil {
			s.logf("edge: metrics handler: %v", err)
		}
	})
}

package edge

import (
	"bytes"
	"encoding/json"
	"net/http"

	"websnap/internal/obs"
	"websnap/internal/sched"
	"websnap/internal/trace"
)

// MetricsHandler serves the server's operation counters, scheduler state,
// and per-stage latency histograms — a small observability surface for
// operators of edge-server fleets. Two formats are offered from the same
// endpoint: the original JSON shape (the default, so existing consumers are
// unaffected) and Prometheus text exposition, selected by
// `?format=prometheus` or content negotiation on the Accept header. Both
// render from the same obs.Registry, so a metric added there appears in
// every format.
//
//	mux := http.NewServeMux()
//	mux.Handle("/metrics", srv.MetricsHandler())
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if obs.WantsPrometheus(r.URL.Query().Get("format"), r.Header.Get("Accept")) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := s.reg.WritePrometheus(w); err != nil {
				s.logf("edge: metrics handler: %v", err)
			}
			return
		}
		st := s.SchedStats()
		payload := struct {
			Installed bool        `json:"installed"`
			Metrics   Metrics     `json:"metrics"`
			Scheduler sched.Stats `json:"scheduler"`
			// QueueingMillis is the estimated wait a request submitted
			// now would spend queued — the same figure served to clients
			// as a load hint.
			QueueingMillis float64 `json:"queueingMillis"`
			// Stages is the per-stage latency summary of the server-side
			// offload pipeline (queue wait, execution).
			Stages []trace.StageSummary `json:"stages"`
		}{
			Installed:      s.Installed(),
			Metrics:        s.Metrics(),
			Scheduler:      st,
			QueueingMillis: float64(st.QueueingDelay().Microseconds()) / 1000,
			Stages:         s.rec.Summaries(),
		}
		// Encode into a buffer first: an encode failure must surface as a
		// 500, not a torn 200 with half a JSON object.
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(payload); err != nil {
			s.logf("edge: metrics handler: %v", err)
			http.Error(w, "metrics encoding failed", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write(buf.Bytes()); err != nil {
			s.logf("edge: metrics handler: %v", err)
		}
	})
}

// HealthzHandler reports process liveness: it answers 200 as long as the
// process can serve HTTP at all. Orchestrators restart on liveness
// failures, so this must not depend on installation or load state.
func (s *Server) HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n")) //nolint:errcheck // best-effort probe reply
	})
}

// ReadyzHandler reports readiness to execute offloads: 200 when the
// offloading system is installed and the scheduler is accepting work, 503
// with the blocking condition otherwise. Load balancers route on this — a
// live-but-not-ready server (mid-install, or draining on shutdown) drops
// out of rotation without being restarted. A burning SLO is surfaced in
// the 200 body ("ready (slo burning)") rather than flipping to 503: the
// server still serves correctly, it is just slow, and yanking it from
// rotation would shift its load onto peers already near their own
// objectives.
func (s *Server) ReadyzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		switch {
		case !s.Installed():
			http.Error(w, "offloading system not installed", http.StatusServiceUnavailable)
		case !s.sched.Accepting():
			http.Error(w, "scheduler draining", http.StatusServiceUnavailable)
		case s.cfg.SLO != nil && s.cfg.SLO.Status().Burning:
			w.Write([]byte("ready (slo burning)\n")) //nolint:errcheck // best-effort probe reply
		default:
			w.Write([]byte("ready\n")) //nolint:errcheck // best-effort probe reply
		}
	})
}

// SLOHandler serves the configured SLO's burn state as JSON, or 404 when
// no SLO was configured (cmd/edged without -slo-objective).
func (s *Server) SLOHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.SLO == nil {
			http.Error(w, "no SLO configured", http.StatusNotFound)
			return
		}
		s.cfg.SLO.Handler().ServeHTTP(w, r)
	})
}

// FlightHandler serves the flight recorder's ring as JSON, or 404 when no
// recorder was configured.
func (s *Server) FlightHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.Flight == nil {
			http.Error(w, "no flight recorder configured", http.StatusNotFound)
			return
		}
		s.cfg.Flight.Handler().ServeHTTP(w, r)
	})
}

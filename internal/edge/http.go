package edge

import (
	"encoding/json"
	"net/http"

	"websnap/internal/sched"
)

// MetricsHandler serves the server's operation counters and scheduler state
// as JSON — a small observability surface for operators of edge-server
// fleets.
//
//	mux := http.NewServeMux()
//	mux.Handle("/metrics", srv.MetricsHandler())
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		st := s.SchedStats()
		w.Header().Set("Content-Type", "application/json")
		payload := struct {
			Installed bool        `json:"installed"`
			Metrics   Metrics     `json:"metrics"`
			Scheduler sched.Stats `json:"scheduler"`
			// QueueingMillis is the estimated wait a request submitted
			// now would spend queued — the same figure served to clients
			// as a load hint.
			QueueingMillis float64 `json:"queueingMillis"`
		}{
			Installed:      s.Installed(),
			Metrics:        s.Metrics(),
			Scheduler:      st,
			QueueingMillis: float64(st.QueueingDelay().Microseconds()) / 1000,
		}
		if err := json.NewEncoder(w).Encode(payload); err != nil {
			s.logf("edge: metrics handler: %v", err)
		}
	})
}

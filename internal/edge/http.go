package edge

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"websnap/internal/sched"
	"websnap/internal/trace"
)

// MetricsHandler serves the server's operation counters, scheduler state,
// and per-stage latency histograms — a small observability surface for
// operators of edge-server fleets. Two formats are offered from the same
// endpoint: the original JSON shape (the default, so existing consumers are
// unaffected) and Prometheus text exposition, selected by
// `?format=prometheus` or an Accept header naming text/plain.
//
//	mux := http.NewServeMux()
//	mux.Handle("/metrics", srv.MetricsHandler())
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if wantsPrometheus(r) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := s.writePrometheus(w); err != nil {
				s.logf("edge: metrics handler: %v", err)
			}
			return
		}
		st := s.SchedStats()
		w.Header().Set("Content-Type", "application/json")
		payload := struct {
			Installed bool        `json:"installed"`
			Metrics   Metrics     `json:"metrics"`
			Scheduler sched.Stats `json:"scheduler"`
			// QueueingMillis is the estimated wait a request submitted
			// now would spend queued — the same figure served to clients
			// as a load hint.
			QueueingMillis float64 `json:"queueingMillis"`
			// Stages is the per-stage latency summary of the server-side
			// offload pipeline (queue wait, execution).
			Stages []trace.StageSummary `json:"stages"`
		}{
			Installed:      s.Installed(),
			Metrics:        s.Metrics(),
			Scheduler:      st,
			QueueingMillis: float64(st.QueueingDelay().Microseconds()) / 1000,
			Stages:         s.rec.Summaries(),
		}
		if err := json.NewEncoder(w).Encode(payload); err != nil {
			s.logf("edge: metrics handler: %v", err)
		}
	})
}

// wantsPrometheus reports whether the request asked for text exposition:
// an explicit ?format=prometheus, or an Accept header that prefers
// text/plain (what a Prometheus scraper sends) without naming JSON.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json")
}

// writePrometheus renders every metric in Prometheus text exposition format
// (version 0.0.4): operation counters, scheduler gauges, and one native
// histogram series per pipeline stage with cumulative le buckets.
func (s *Server) writePrometheus(w io.Writer) error {
	m := s.Metrics()
	st := s.SchedStats()
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, help, name, name, strconv.FormatFloat(v, 'g', -1, 64))
	}
	counter("websnap_conns_served_total", "Accepted client connections.", m.ConnsServed)
	counter("websnap_conns_refused_total", "Connections refused at the MaxConns cap.", m.ConnsRefused)
	counter("websnap_models_stored_total", "Model pre-send requests handled.", m.ModelsStored)
	counter("websnap_snapshots_executed_total", "Full snapshot offloads executed.", m.SnapshotsExecuted)
	counter("websnap_deltas_executed_total", "Delta offloads executed.", m.DeltasExecuted)
	counter("websnap_installs_total", "Completed VM-synthesis installations.", m.Installs)
	counter("websnap_errors_total", "Requests answered with an error frame.", m.Errors)
	counter("websnap_sched_submitted_total", "Tasks admitted to the scheduler queue.", st.Submitted)
	counter("websnap_sched_rejected_total", "Tasks rejected at admission.", st.Rejected)
	counter("websnap_sched_executed_total", "Tasks completed.", st.Executed)
	counter("websnap_sched_batches_total", "Executed batches.", st.Batches)

	installed := 0.0
	if s.Installed() {
		installed = 1
	}
	gauge("websnap_installed", "Whether the offloading system is installed (1) or not (0).", installed)
	gauge("websnap_queue_depth", "Tasks currently waiting in the admission queue.", float64(st.QueueDepth))
	gauge("websnap_queue_capacity", "Admission queue capacity.", float64(st.QueueCap))
	gauge("websnap_workers", "Worker pool size.", float64(st.Workers))
	gauge("websnap_busy_workers", "Workers currently executing a batch.", float64(st.Busy))
	gauge("websnap_queueing_delay_seconds", "Estimated queueing delay for a request submitted now.",
		st.QueueingDelay().Seconds())

	const histName = "websnap_stage_seconds"
	fmt.Fprintf(&b, "# HELP %s Offload pipeline stage latency in seconds.\n# TYPE %s histogram\n",
		histName, histName)
	for _, stage := range trace.AllStages() {
		h := s.rec.Stage(stage)
		if h == nil {
			continue
		}
		writePromHistogram(&b, histName, string(stage), h)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram renders one stage histogram as a Prometheus histogram
// series (the caller has already emitted the HELP/TYPE header). Only
// occupied buckets are emitted (cumulatively), plus the mandatory +Inf
// bucket — the log-bucketed histogram has hundreds of potential buckets and
// a scrape needs only the populated ones.
func writePromHistogram(b *strings.Builder, name, stage string, h *trace.Histogram) {
	cum := uint64(0)
	h.ForEachBucket(func(upper time.Duration, count uint64) {
		cum += count
		fmt.Fprintf(b, "%s_bucket{stage=%q,le=%q} %d\n",
			name, stage, strconv.FormatFloat(upper.Seconds(), 'g', -1, 64), cum)
	})
	fmt.Fprintf(b, "%s_bucket{stage=%q,le=\"+Inf\"} %d\n", name, stage, h.Count())
	fmt.Fprintf(b, "%s_sum{stage=%q} %s\n", name, stage,
		strconv.FormatFloat(h.Sum().Seconds(), 'g', -1, 64))
	fmt.Fprintf(b, "%s_count{stage=%q} %d\n", name, stage, h.Count())
}

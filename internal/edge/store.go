package edge

import (
	"bytes"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"

	"websnap/internal/nn"
)

// File suffixes for persisted model files — "the NN model files (including
// the description/parameters of the NN)" that the paper's server saves
// (§III.B.1).
const (
	specSuffix    = ".spec.json"
	weightsSuffix = ".weights.bin"
)

// NewModelStoreDir creates a model store persisted under dir: every
// pre-sent model is written as a descriptor file plus a weight blob, and
// models already on disk are loaded eagerly, so a restarted edge server
// still has the models earlier sessions uploaded.
func NewModelStoreDir(dir string) (*ModelStore, error) {
	return newSessionStoreDir(dir, 0)
}

// newSessionStoreDir builds a dir-persisted store bounded to maxBytes.
func newSessionStoreDir(dir string, maxBytes int64) (*SessionStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("edge: model dir: %w", err)
	}
	s := newSessionStore(maxBytes)
	s.dir = dir
	if err := s.loadAll(); err != nil {
		return nil, err
	}
	return s, nil
}

// escape makes an identifier safe as a path component.
func escape(id string) string { return url.PathEscape(id) }

func unescape(comp string) (string, error) { return url.PathUnescape(comp) }

// persist writes one model's files under the store directory.
func (s *ModelStore) persist(appID, name string, net *nn.Network) error {
	appDir := filepath.Join(s.dir, escape(appID))
	if err := os.MkdirAll(appDir, 0o755); err != nil {
		return fmt.Errorf("edge: persist model: %w", err)
	}
	spec, err := nn.EncodeSpec(net)
	if err != nil {
		return err
	}
	var weights bytes.Buffer
	if err := net.EncodeWeights(&weights); err != nil {
		return err
	}
	base := filepath.Join(appDir, escape(name))
	if err := os.WriteFile(base+specSuffix, spec, 0o644); err != nil {
		return fmt.Errorf("edge: persist model %q: %w", name, err)
	}
	if err := os.WriteFile(base+weightsSuffix, weights.Bytes(), 0o644); err != nil {
		return fmt.Errorf("edge: persist model %q: %w", name, err)
	}
	return nil
}

// loadAll reads every persisted model into memory.
func (s *ModelStore) loadAll() error {
	apps, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("edge: load models: %w", err)
	}
	for _, appEntry := range apps {
		if !appEntry.IsDir() {
			continue
		}
		appID, err := unescape(appEntry.Name())
		if err != nil {
			return fmt.Errorf("edge: load models: bad app dir %q: %w", appEntry.Name(), err)
		}
		appDir := filepath.Join(s.dir, appEntry.Name())
		files, err := os.ReadDir(appDir)
		if err != nil {
			return fmt.Errorf("edge: load models: %w", err)
		}
		for _, f := range files {
			if !strings.HasSuffix(f.Name(), specSuffix) {
				continue
			}
			escName := strings.TrimSuffix(f.Name(), specSuffix)
			name, err := unescape(escName)
			if err != nil {
				return fmt.Errorf("edge: load models: bad model file %q: %w", f.Name(), err)
			}
			net, err := loadModel(appDir, escName)
			if err != nil {
				return fmt.Errorf("edge: load model %q for app %q: %w", name, appID, err)
			}
			s.putModel(appID, name, net)
		}
	}
	return nil
}

func loadModel(appDir, escName string) (*nn.Network, error) {
	spec, err := os.ReadFile(filepath.Join(appDir, escName+specSuffix))
	if err != nil {
		return nil, err
	}
	net, err := nn.DecodeSpec(spec)
	if err != nil {
		return nil, err
	}
	weights, err := os.ReadFile(filepath.Join(appDir, escName+weightsSuffix))
	if err != nil {
		return nil, err
	}
	if err := net.DecodeWeights(bytes.NewReader(weights)); err != nil {
		return nil, err
	}
	return net, nil
}

package edge

import (
	"errors"
	"net"
	"testing"

	"websnap/internal/client"
	"websnap/internal/nn"
	"websnap/internal/protocol"
	"websnap/internal/tensor"
)

// startChainServer runs an installed edge server whose AdvertiseAddr is its
// own listen address, so chain spans carry the hop's identity.
func startChainServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.Catalog == nil {
		cfg.Catalog = testCatalog(t)
	}
	cfg.Installed = true
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg.AdvertiseAddr = ln.Addr().String()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve returned: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// chainInput builds a deterministic activation-like input for the model.
func chainInput(t *testing.T, model *nn.Network) *tensor.Tensor {
	t.Helper()
	in, err := tensor.New(model.InputShape()...)
	if err != nil {
		t.Fatal(err)
	}
	data := in.Data()
	s := uint64(424243)
	for i := range data {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		data[i] = float32(s%100000)/10000 - 1
	}
	return in
}

// chainRanges splits layers [1, N) of the model over k hops (the client
// keeps layer ranges [0, 1) to denature the input).
func chainRanges(t *testing.T, model *nn.Network, addrs []string) []protocol.ChainHop {
	t.Helper()
	n := model.NumLayers()
	k := len(addrs)
	if n-1 < k {
		t.Fatalf("model has %d layers, too few for %d hops", n, k)
	}
	hops := make([]protocol.ChainHop, k)
	from := 1
	for i := range hops {
		to := 1 + (n-1)*(i+1)/k
		hops[i] = protocol.ChainHop{Addr: addrs[i], From: from, To: to}
		from = to
	}
	hops[k-1].To = n
	return hops
}

// preSendAll ships the model to every chain server.
func preSendAll(t *testing.T, model *nn.Network, addrs []string) {
	t.Helper()
	for _, addr := range addrs {
		conn := dial(t, addr)
		if err := conn.PreSendModel("chain-app", model.Name(), model, false); err != nil {
			t.Fatalf("pre-send to %s: %v", addr, err)
		}
	}
}

// TestChainExecBitIdentical drives a 3-hop chain and requires the output to
// be bit-identical to a purely local forward pass.
func TestChainExecBitIdentical(t *testing.T) {
	model := tinyModel(t, "tiny")
	var addrs []string
	for i := 0; i < 3; i++ {
		_, addr := startChainServer(t, Config{})
		addrs = append(addrs, addr)
	}
	preSendAll(t, model, addrs)
	hops := chainRanges(t, model, addrs)

	in := chainInput(t, model)
	want, err := model.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	boundary, err := model.ForwardRange(in, 0, hops[0].From)
	if err != nil {
		t.Fatal(err)
	}
	conn := dial(t, addrs[0])
	out, err := conn.ChainExec("chain-app", model.Name(), hops, boundary, "")
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.SameShape(out.Output, want) {
		t.Fatalf("chain output shape %v != local %v", out.Output.Shape(), want.Shape())
	}
	got, exp := out.Output.Data(), want.Data()
	for i := range exp {
		if got[i] != exp[i] {
			t.Fatalf("chain output diverges at %d: %v != %v", i, got[i], exp[i])
		}
	}
}

// TestChainSpanParenting asserts the merged trace nests hop under hop:
// the first hop's chain_exec span carries the second hop's as a child, and
// so on down the chain.
func TestChainSpanParenting(t *testing.T) {
	model := tinyModel(t, "tiny")
	var addrs []string
	for i := 0; i < 3; i++ {
		_, addr := startChainServer(t, Config{})
		addrs = append(addrs, addr)
	}
	preSendAll(t, model, addrs)
	hops := chainRanges(t, model, addrs)

	in := chainInput(t, model)
	boundary, err := model.ForwardRange(in, 0, hops[0].From)
	if err != nil {
		t.Fatal(err)
	}
	conn := dial(t, addrs[0])
	out, err := conn.ChainExec("chain-app", model.Name(), hops, boundary, "trace-chain-1")
	if err != nil {
		t.Fatal(err)
	}
	if out.TraceID != "trace-chain-1" {
		t.Fatalf("trace ID %q not preserved", out.TraceID)
	}
	span := out.Span
	for i, hop := range hops {
		if span == nil {
			t.Fatalf("no span for hop %d", i+1)
		}
		if span.Op != "chain_exec" {
			t.Fatalf("hop %d span op %q", i+1, span.Op)
		}
		if span.Addr != hop.Addr {
			t.Fatalf("hop %d span addr %q, want %q", i+1, span.Addr, hop.Addr)
		}
		var next *protocol.SpanNode
		for _, c := range span.Children {
			if c.Op == "chain_exec" {
				next = c
			}
		}
		span = next
	}
	if span != nil {
		t.Fatalf("unexpected extra chain_exec span %+v", span)
	}
}

// TestChainHopDeathAttribution kills the middle hop and requires the error
// to name it (1-based index 2), so the planner excludes the right server.
func TestChainHopDeathAttribution(t *testing.T) {
	model := tinyModel(t, "tiny")
	var addrs []string
	for i := 0; i < 3; i++ {
		_, addr := startChainServer(t, Config{})
		addrs = append(addrs, addr)
	}
	preSendAll(t, model, addrs)
	hops := chainRanges(t, model, addrs)

	in := chainInput(t, model)
	boundary, err := model.ForwardRange(in, 0, hops[0].From)
	if err != nil {
		t.Fatal(err)
	}
	conn := dial(t, addrs[0])
	// Point the middle hop at a dead address: the first hop's relay fails
	// and must attribute the failure to manifest index 2.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := deadLn.Addr().String()
	deadLn.Close()
	hops[1].Addr = dead

	_, err = conn.ChainExec("chain-app", model.Name(), hops, boundary, "")
	if err == nil {
		t.Fatal("chain exec over dead hop succeeded")
	}
	var che *client.ChainHopError
	if !errors.As(err, &che) {
		t.Fatalf("error %v is not a ChainHopError", err)
	}
	if che.Hop != 2 {
		t.Fatalf("failure attributed to hop %d, want 2", che.Hop)
	}
	if !errors.Is(err, client.ErrServerError) {
		t.Fatalf("chain error %v does not match ErrServerError", err)
	}
}

// TestChainModelMissing requires a hop without the pre-sent model to name
// itself in the failure.
func TestChainModelMissing(t *testing.T) {
	model := tinyModel(t, "tiny")
	var addrs []string
	for i := 0; i < 2; i++ {
		_, addr := startChainServer(t, Config{})
		addrs = append(addrs, addr)
	}
	// Only the first hop gets the model.
	preSendAll(t, model, addrs[:1])
	hops := chainRanges(t, model, addrs)

	in := chainInput(t, model)
	boundary, err := model.ForwardRange(in, 0, hops[0].From)
	if err != nil {
		t.Fatal(err)
	}
	conn := dial(t, addrs[0])
	_, err = conn.ChainExec("chain-app", model.Name(), hops, boundary, "")
	var che *client.ChainHopError
	if !errors.As(err, &che) {
		t.Fatalf("error %v is not a ChainHopError", err)
	}
	if che.Hop != 2 {
		t.Fatalf("failure attributed to hop %d, want 2", che.Hop)
	}
}

// TestChainPongAdvertisesCapability checks the hint-gated capability bit.
func TestChainPongAdvertisesCapability(t *testing.T) {
	_, addr := startChainServer(t, Config{})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	for _, tc := range []struct {
		hints int
		want  bool
	}{
		{protocol.HintChainV1, true},
		{protocol.HintLoadV1, false},
	} {
		msg, err := protocol.Encode(protocol.MsgPing, protocol.PingHeader{Hints: tc.hints}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := protocol.Write(raw, msg); err != nil {
			t.Fatal(err)
		}
		resp, err := protocol.Read(raw)
		if err != nil {
			t.Fatal(err)
		}
		var pong protocol.PongHeader
		if err := protocol.DecodeHeader(resp, &pong); err != nil {
			t.Fatal(err)
		}
		if pong.Chain != tc.want {
			t.Fatalf("hints %d: pong.Chain = %v, want %v", tc.hints, pong.Chain, tc.want)
		}
	}
}

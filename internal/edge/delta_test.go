package edge

import (
	"testing"

	"websnap/internal/client"
	"websnap/internal/mlapp"
	"websnap/internal/webapp"
)

// newDeltaOffloader builds an offloader with delta offloading enabled and
// the model pre-sent.
func newDeltaOffloader(t *testing.T, addr, appID string) (*client.Offloader, *webapp.App) {
	t.Helper()
	model := tinyModel(t, "tiny")
	app, err := mlapp.NewFullApp(appID, "tiny", model, tinyLabels)
	if err != nil {
		t.Fatal(err)
	}
	off, err := client.NewOffloader(app, dial(t, addr), client.Options{
		OffloadEventTypes: []string{mlapp.EventClick},
		Models:            []client.ModelToSend{{Name: "tiny", Net: model}},
		EnableDelta:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	off.StartPreSend()
	if err := off.WaitForAcks(); err != nil {
		t.Fatal(err)
	}
	return off, app
}

func runInference(t *testing.T, off *client.Offloader, app *webapp.App, img webapp.Float32Array) string {
	t.Helper()
	if err := mlapp.LoadImage(app, img); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
	if _, err := off.Run(10); err != nil {
		t.Fatal(err)
	}
	res := mlapp.Result(app)
	if res == "" {
		t.Fatal("no result")
	}
	return res
}

// TestDeltaOffloadRepeated exercises the paper's §VI future work end to
// end: the first offload ships a full snapshot; subsequent offloads ship
// deltas against the state left at the server, arrive at the same results
// as full offloads, and are significantly smaller.
func TestDeltaOffloadRepeated(t *testing.T) {
	_, addr := startServer(t, Config{Installed: true})
	off, app := newDeltaOffloader(t, addr, "app-delta")

	model := tinyModel(t, "tiny")
	var wants []string
	for seed := uint64(1); seed <= 3; seed++ {
		wants = append(wants, localResult(t, model, mlapp.SyntheticImage(3*16*16, seed)))
	}

	// Offload 1: full snapshot (no base yet).
	got1 := runInference(t, off, app, mlapp.SyntheticImage(3*16*16, 1))
	st := off.Stats()
	if st.Offloads != 1 || st.DeltaOffloads != 0 {
		t.Fatalf("after first offload: %+v", st)
	}
	firstBytes := st.LastSnapshotBytes
	if got1 != wants[0] {
		t.Errorf("offload 1 = %q, want %q", got1, wants[0])
	}

	// Offloads 2 and 3: deltas.
	got2 := runInference(t, off, app, mlapp.SyntheticImage(3*16*16, 2))
	st = off.Stats()
	if st.DeltaOffloads != 1 {
		t.Fatalf("second offload should be a delta: %+v", st)
	}
	if got2 != wants[1] {
		t.Errorf("offload 2 = %q, want %q", got2, wants[1])
	}
	if st.LastSnapshotBytes >= firstBytes {
		t.Errorf("delta (%d B) should be smaller than the full snapshot (%d B)",
			st.LastSnapshotBytes, firstBytes)
	}

	got3 := runInference(t, off, app, mlapp.SyntheticImage(3*16*16, 3))
	st = off.Stats()
	if st.DeltaOffloads != 2 || st.DeltaFallbacks != 0 {
		t.Fatalf("after third offload: %+v", st)
	}
	if got3 != wants[2] {
		t.Errorf("offload 3 = %q, want %q", got3, wants[2])
	}
}

// TestDeltaFallbackOnServerHandoff: a delta against a server that has never
// seen this app must fall back to a full snapshot transparently.
func TestDeltaFallbackOnServerHandoff(t *testing.T) {
	_, addr1 := startServer(t, Config{Installed: true})
	_, addr2 := startServer(t, Config{Installed: true})

	off, app := newDeltaOffloader(t, addr1, "app-delta-move")
	model := tinyModel(t, "tiny")

	img1 := mlapp.SyntheticImage(3*16*16, 7)
	if got, want := runInference(t, off, app, img1), localResult(t, model, img1); got != want {
		t.Fatalf("offload 1 = %q, want %q", got, want)
	}

	// Move to a new server, keeping the same app (and its lastSync) by
	// constructing a new offloader that has inherited no server state.
	// The offloader is new, so its first offload is full — the handoff
	// fallback is exercised at the client level in the second half.
	off2, err := client.NewOffloader(app, dial(t, addr2), client.Options{
		OffloadEventTypes: []string{mlapp.EventClick},
		Models:            []client.ModelToSend{{Name: "tiny", Net: model}},
		EnableDelta:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	off2.StartPreSend()
	if err := off2.WaitForAcks(); err != nil {
		t.Fatal(err)
	}
	img2 := mlapp.SyntheticImage(3*16*16, 8)
	if got, want := runInference(t, off2, app, img2), localResult(t, model, img2); got != want {
		t.Errorf("offload on new server = %q, want %q", got, want)
	}
	if st := off2.Stats(); st.Offloads != 1 || st.DeltaOffloads != 0 {
		t.Errorf("new-server stats = %+v", st)
	}
}

// TestDeltaFallbackOnBaseMismatch: when the state at the server no longer
// matches the client's sync point (here: another client instance with the
// same app ID overwrote it), the delta attempt is rejected server-side and
// the offloader transparently retries with a full snapshot.
func TestDeltaFallbackOnBaseMismatch(t *testing.T) {
	_, addr := startServer(t, Config{Installed: true})
	const appID = "app-delta-clash"
	offA, appA := newDeltaOffloader(t, addr, appID)
	model := tinyModel(t, "tiny")

	// A: full offload, then one delta to establish sync.
	runInference(t, offA, appA, mlapp.SyntheticImage(3*16*16, 11))
	runInference(t, offA, appA, mlapp.SyntheticImage(3*16*16, 12))
	if st := offA.Stats(); st.DeltaOffloads != 1 || st.DeltaFallbacks != 0 {
		t.Fatalf("warm-up stats = %+v", st)
	}

	// B: same app ID, different state — its full offload overwrites the
	// server-side state A is synced against.
	offB, appB := newDeltaOffloader(t, addr, appID)
	runInference(t, offB, appB, mlapp.SyntheticImage(3*16*16, 99))

	// A's next delta must be rejected (base mismatch), fall back to a
	// full snapshot, and still produce the right result.
	img := mlapp.SyntheticImage(3*16*16, 13)
	if got, want := runInference(t, offA, appA, img), localResult(t, model, img); got != want {
		t.Errorf("post-clash result = %q, want %q", got, want)
	}
	st := offA.Stats()
	if st.DeltaFallbacks != 1 {
		t.Errorf("stats = %+v, want 1 delta fallback", st)
	}
	// After re-sync, deltas resume.
	img2 := mlapp.SyntheticImage(3*16*16, 14)
	if got, want := runInference(t, offA, appA, img2), localResult(t, model, img2); got != want {
		t.Errorf("re-synced result = %q, want %q", got, want)
	}
	if st := offA.Stats(); st.DeltaOffloads != 2 {
		t.Errorf("stats after re-sync = %+v, want 2 delta offloads", st)
	}
}

// Package core is the paper's contribution assembled as a library:
// snapshot-based offloading sessions for ML web apps against generic edge
// servers. It wires together the web-app runtime, the snapshot mechanism,
// the client offloader (with model pre-sending), the Neurosurgeon-style
// partition chooser for privacy-preserving partial inference, and the edge
// server — behind one small API.
package core

import (
	"errors"
	"fmt"
	"time"

	"websnap/internal/client"
	"websnap/internal/costmodel"
	"websnap/internal/edge"
	"websnap/internal/mlapp"
	"websnap/internal/netem"
	"websnap/internal/nn"
	"websnap/internal/obs"
	"websnap/internal/partition"
	"websnap/internal/webapp"
)

// Mode selects how a session executes DNN inference.
type Mode int

// Session modes.
const (
	// ModeLocal runs everything on the client (the paper's Client
	// configuration).
	ModeLocal Mode = iota + 1
	// ModeFull offloads the whole inference handler (offloading with
	// full inference).
	ModeFull
	// ModePartial runs the front part of the DNN locally and offloads
	// the rear (partial inference, privacy-preserving).
	ModePartial
	// ModeAuto picks between full and partial dynamically from the cost
	// model and network status, honoring the privacy constraint when
	// RequireDenature is set.
	ModeAuto
)

func (m Mode) String() string {
	switch m {
	case ModeLocal:
		return "local"
	case ModeFull:
		return "full"
	case ModePartial:
		return "partial"
	case ModeAuto:
		return "auto"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// DefaultCatalog returns a catalog holding the standard ML web-app code
// bundles; edge servers serving these apps use it to resolve snapshots.
func DefaultCatalog() (*webapp.Catalog, error) {
	cat := webapp.NewCatalog()
	if err := cat.Add(mlapp.FullRegistry()); err != nil {
		return nil, err
	}
	if err := cat.Add(mlapp.PartialRegistry()); err != nil {
		return nil, err
	}
	return cat, nil
}

// SessionConfig configures NewSession.
type SessionConfig struct {
	// AppID identifies this app instance to the edge server.
	AppID string
	// ModelName and Model define the DNN the app uses.
	ModelName string
	Model     *nn.Network
	// Labels are the output label strings shown in the DOM.
	Labels []string
	// Mode selects local / full / partial / auto.
	Mode Mode
	// Conn is the connection to the edge server; nil only for ModeLocal.
	Conn *client.Conn
	// PreSend starts model pre-sending immediately (§III.B.1). When
	// false, the first offload pays the model upload inline.
	PreSend bool
	// LocalFallback executes locally if the edge server fails.
	LocalFallback bool
	// EnableDelta ships repeated offloads as deltas against the state
	// left at the server by the previous offload (§VI future work).
	EnableDelta bool
	// Compress ships snapshot bodies DEFLATE-compressed (off by default,
	// matching the paper's plain-text snapshots).
	Compress bool
	// MaxQueueingDelay sheds offloads to local execution when the edge
	// server's load hint predicts more queueing delay than this (or a
	// saturated queue). Zero disables load shedding.
	MaxQueueingDelay time.Duration
	// LoadHintTTL bounds how long a received load hint influences the
	// partition decision and shedding; older hints are ignored rather
	// than letting a long-stale queue report steer the session. Zero
	// selects client.DefaultLoadHintTTL.
	LoadHintTTL time.Duration

	// Quality selects the model quality tier: nn.PrecFloat32 (default)
	// runs exact float32 kernels, nn.PrecInt8 the calibrated quantized
	// path. The tier is stored as an app global, so it rides every
	// snapshot and the edge server executes offloaded layers at the same
	// precision; layer-boundary features stay float32 on the wire either
	// way. The partition decision uses the matching per-device int8
	// speedups, which moves the optimal split (client gains more from
	// int8 than the server, so more layers stay local).
	Quality nn.Precision

	// SplitLabel pins the partial-inference point (e.g. "1st_pool");
	// empty selects it dynamically via the cost model.
	SplitLabel string
	// RequireDenature keeps at least one DNN layer on the client when
	// choosing a split (the paper's privacy constraint). Only consulted
	// for dynamic selection. ModeAuto with RequireDenature unset may
	// select full offloading.
	RequireDenature bool

	// ClientDevice, ServerDevice, and Network parametrize the dynamic
	// partition decision; zero values select the paper's calibrated
	// profiles and 30 Mbps Wi-Fi.
	ClientDevice, ServerDevice costmodel.Device
	Network                    netem.Profile

	// Audit, when non-nil, receives one structured decision event per
	// inference request: the chosen path (local/full/partial/shed/
	// fallback), the cost model's latency prediction for that path, and
	// the measured outcome.
	Audit *obs.Auditor
}

func (cfg *SessionConfig) applyDefaults() {
	if cfg.ClientDevice.Name == "" {
		cfg.ClientDevice = costmodel.ClientOdroid
	}
	if cfg.ServerDevice.Name == "" {
		cfg.ServerDevice = costmodel.ServerX86
	}
	if cfg.Network.BandwidthBitsPerSec == 0 && cfg.Network.Latency == 0 {
		cfg.Network = netem.WiFi30Mbps
	}
	if cfg.Quality == "" {
		cfg.Quality = nn.PrecFloat32
	}
}

// Session is one running ML web app with an offloading strategy attached.
type Session struct {
	cfg  SessionConfig
	app  *webapp.App
	off  *client.Offloader // nil in ModeLocal
	mode Mode              // resolved mode (auto collapses to full/partial)
	// split describes the chosen partition point in partial mode.
	split *partition.Candidate
}

// NewSession builds the app, resolves the offloading strategy, and (when
// configured) starts pre-sending models.
func NewSession(cfg SessionConfig) (*Session, error) {
	cfg.applyDefaults()
	if cfg.Model == nil || cfg.ModelName == "" {
		return nil, errors.New("core: model and model name required")
	}
	if cfg.Mode == 0 {
		return nil, errors.New("core: mode required")
	}
	if cfg.Mode != ModeLocal && cfg.Conn == nil {
		return nil, fmt.Errorf("core: mode %s requires a connection", cfg.Mode)
	}
	s := &Session{cfg: cfg, mode: cfg.Mode}
	if err := s.resolveMode(); err != nil {
		return nil, err
	}
	if err := s.buildApp(); err != nil {
		return nil, err
	}
	if err := s.buildOffloader(); err != nil {
		return nil, err
	}
	if s.off != nil && cfg.PreSend {
		s.off.StartPreSend()
	}
	return s, nil
}

// resolveMode collapses ModeAuto into full or partial using the partition
// estimator, and selects the split point for partial mode.
func (s *Session) resolveMode() error {
	needsPlan := s.mode == ModeAuto || (s.mode == ModePartial && s.cfg.SplitLabel == "")
	if !needsPlan {
		if s.mode == ModePartial {
			plan, err := s.analyze()
			if err != nil {
				return err
			}
			c, ok := plan.ByLabel(s.cfg.SplitLabel)
			if !ok {
				return fmt.Errorf("core: model %q has no partition point %q", s.cfg.ModelName, s.cfg.SplitLabel)
			}
			s.split = &c
		}
		return nil
	}
	plan, err := s.analyze()
	if err != nil {
		return err
	}
	best, err := plan.Choose(s.cfg.RequireDenature || s.mode == ModePartial)
	if err != nil {
		return err
	}
	if s.mode == ModeAuto && best.Point.Index == 0 {
		s.mode = ModeFull
		return nil
	}
	s.mode = ModePartial
	s.split = &best
	return nil
}

func (s *Session) analyze() (partition.Plan, error) {
	// Fold the server's advertised queueing delay (if a load hint has
	// already arrived on this connection) into the decision: a loaded
	// server pushes the optimum toward keeping layers on the client. A
	// hint older than the TTL is ignored — the queue it described has
	// long since drained (or grown) and would skew the split decision.
	var queueDelay time.Duration
	if s.cfg.Conn != nil {
		if hint, at, ok := s.cfg.Conn.LastLoad(); ok {
			ttl := s.cfg.LoadHintTTL
			if ttl <= 0 {
				ttl = client.DefaultLoadHintTTL
			}
			if time.Since(at) <= ttl {
				queueDelay = hint.QueueingDelay()
			}
		}
	}
	return partition.Analyze(s.cfg.Model, partition.Config{
		Client:             s.cfg.ClientDevice,
		Server:             s.cfg.ServerDevice,
		Network:            s.cfg.Network,
		StateOverheadBytes: 64 << 10,
		ResultBytes:        4 << 10,
		ServerQueueDelay:   queueDelay,
		Precision:          s.cfg.Quality,
	})
}

func (s *Session) buildApp() error {
	var err error
	switch s.mode {
	case ModeLocal, ModeFull:
		s.app, err = mlapp.NewFullApp(s.cfg.AppID, s.cfg.ModelName, s.cfg.Model, s.cfg.Labels)
	case ModePartial:
		s.app, err = mlapp.NewPartialApp(s.cfg.AppID, s.cfg.ModelName, s.cfg.Model,
			s.split.Point.Index, s.cfg.Labels)
	default:
		err = fmt.Errorf("core: unsupported mode %s", s.mode)
	}
	if err == nil && s.cfg.Quality != nn.PrecFloat32 {
		err = mlapp.SetQuality(s.app, s.cfg.Quality)
	}
	return err
}

func (s *Session) buildOffloader() error {
	if s.mode == ModeLocal {
		return nil
	}
	opts := client.Options{
		LocalFallback:    s.cfg.LocalFallback,
		EnableDelta:      s.cfg.EnableDelta,
		Compress:         s.cfg.Compress,
		MaxQueueingDelay: s.cfg.MaxQueueingDelay,
		LoadHintTTL:      s.cfg.LoadHintTTL,
		Audit:            s.cfg.Audit,
	}
	switch s.mode {
	case ModeFull:
		opts.OffloadEventTypes = []string{mlapp.EventClick}
		opts.Models = []client.ModelToSend{{Name: s.cfg.ModelName, Net: s.cfg.Model}}
		opts.AuditPath = obs.PathFull
		if s.cfg.Audit != nil {
			// Cost-model prediction for the full-offload path, so the
			// audit can compare it against measured latency. Candidate 0
			// is the Input split: every layer on the server.
			if plan, err := s.analyze(); err == nil && len(plan.Candidates) > 0 {
				opts.PredictedOffload = plan.Candidates[0].Total
			}
		}
	case ModePartial:
		rearName := s.cfg.ModelName + mlapp.RearSuffix
		rear, ok := s.app.Model(rearName)
		if !ok {
			return fmt.Errorf("core: rear model %q missing", rearName)
		}
		opts.OffloadEventTypes = []string{mlapp.EventFrontComplete}
		opts.Models = []client.ModelToSend{{Name: rearName, Net: rear, Partial: true}}
		opts.ExcludeModels = []string{s.cfg.ModelName + mlapp.FrontSuffix}
		opts.AuditPath = obs.PathPartial
		if s.split != nil {
			opts.SplitLabel = s.split.Point.Label
			opts.PredictedOffload = s.split.Total
		}
	}
	off, err := client.NewOffloader(s.app, s.cfg.Conn, opts)
	if err != nil {
		return err
	}
	s.off = off
	return nil
}

// Mode returns the session's resolved mode (auto collapses at creation).
func (s *Session) Mode() Mode { return s.mode }

// SplitLabel returns the chosen partition point in partial mode ("" in
// other modes).
func (s *Session) SplitLabel() string {
	if s.split == nil {
		return ""
	}
	return s.split.Point.Label
}

// App exposes the underlying web app (DOM inspection, custom events).
func (s *Session) App() *webapp.App { return s.app }

// WaitForModelUpload blocks until pre-sent models have been acknowledged.
func (s *Session) WaitForModelUpload() error {
	if s.off == nil {
		return nil
	}
	return s.off.WaitForAcks()
}

// Stats returns offloading counters (zero value in ModeLocal).
func (s *Session) Stats() client.Stats {
	if s.off == nil {
		return client.Stats{}
	}
	return s.off.Stats()
}

// Classify loads an image into the app, clicks the inference button, and
// drives the app (offloading as configured) until the result is on screen.
func (s *Session) Classify(img webapp.Float32Array) (string, error) {
	if err := mlapp.LoadImage(s.app, img); err != nil {
		return "", err
	}
	s.app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
	var err error
	if s.off != nil {
		_, err = s.off.Run(16)
	} else {
		start := time.Now()
		_, err = s.app.Run(16)
		if s.cfg.Audit != nil {
			// ModeLocal sessions have no offloader; the session itself
			// records the local decision so the audit covers every path.
			pred, _ := s.cfg.ClientDevice.NetworkTime(s.cfg.Model)
			s.cfg.Audit.Record(obs.Decision{
				AppID:     s.cfg.AppID,
				Path:      obs.PathLocal,
				Reason:    "mode-local",
				Predicted: pred,
				Measured:  time.Since(start),
				HintAge:   -1,
			})
		}
	}
	if err != nil {
		return "", err
	}
	res := mlapp.Result(s.app)
	if res == "" {
		return "", errors.New("core: inference produced no result")
	}
	return res, nil
}

// NewEdgeServer constructs a pre-installed edge server that can serve the
// standard ML web apps.
func NewEdgeServer(logf func(string, ...any)) (*edge.Server, error) {
	cat, err := DefaultCatalog()
	if err != nil {
		return nil, err
	}
	return edge.NewServer(edge.Config{Catalog: cat, Installed: true, Logf: logf})
}

package core

import (
	"net"
	"strings"
	"testing"

	"websnap/internal/client"
	"websnap/internal/mlapp"
	"websnap/internal/models"
	"websnap/internal/netem"
	"websnap/internal/nn"
)

func startServer(t *testing.T) string {
	t.Helper()
	srv, err := NewEdgeServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		<-done
	})
	return ln.Addr().String()
}

func dial(t *testing.T, addr string) *client.Conn {
	t.Helper()
	conn, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func tinyModel(t *testing.T) *nn.Network {
	t.Helper()
	m, err := models.BuildTinyNet("tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

var labels = []string{"cat", "dog", "bird"}

// fastNetwork removes the 30 Mbps default so the partition chooser sees a
// LAN; keeps tests' dynamic decisions deterministic.
var fastNetwork = netem.Profile{BandwidthBitsPerSec: 1e9, Latency: 0}

func classify(t *testing.T, s *Session, seed uint64) string {
	t.Helper()
	img := mlapp.SyntheticImage(3*16*16, seed)
	got, err := s.Classify(img)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	return got
}

func TestSessionModesAgree(t *testing.T) {
	addr := startServer(t)
	model := tinyModel(t)
	const seed = 11

	local, err := NewSession(SessionConfig{
		AppID: "s-local", ModelName: "tiny", Model: model, Labels: labels, Mode: ModeLocal,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := classify(t, local, seed)

	full, err := NewSession(SessionConfig{
		AppID: "s-full", ModelName: "tiny", Model: model, Labels: labels,
		Mode: ModeFull, Conn: dial(t, addr), PreSend: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := full.WaitForModelUpload(); err != nil {
		t.Fatal(err)
	}
	if got := classify(t, full, seed); got != want {
		t.Errorf("full mode = %q, want %q", got, want)
	}
	if st := full.Stats(); st.Offloads != 1 {
		t.Errorf("full mode offloads = %d, want 1", st.Offloads)
	}

	partial, err := NewSession(SessionConfig{
		AppID: "s-part", ModelName: "tiny", Model: model, Labels: labels,
		Mode: ModePartial, Conn: dial(t, addr), PreSend: true, SplitLabel: "1st_pool",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := partial.WaitForModelUpload(); err != nil {
		t.Fatal(err)
	}
	if got := classify(t, partial, seed); got != want {
		t.Errorf("partial mode = %q, want %q", got, want)
	}
	if got := partial.SplitLabel(); got != "1st_pool" {
		t.Errorf("split = %q, want 1st_pool", got)
	}
	if st := partial.Stats(); st.Offloads != 1 {
		t.Errorf("partial mode offloads = %d, want 1", st.Offloads)
	}
}

func TestSessionPartialDynamicSplit(t *testing.T) {
	addr := startServer(t)
	s, err := NewSession(SessionConfig{
		AppID: "s-dyn", ModelName: "tiny", Model: tinyModel(t), Labels: labels,
		Mode: ModePartial, Conn: dial(t, addr), Network: fastNetwork,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.SplitLabel() == "" || s.SplitLabel() == "Input" {
		t.Errorf("dynamic partial split = %q, want a real layer boundary", s.SplitLabel())
	}
	if got := classify(t, s, 5); got == "" {
		t.Error("no result")
	}
}

func TestSessionAutoMode(t *testing.T) {
	addr := startServer(t)
	model := tinyModel(t)

	// Unconstrained auto on a fast network: full offloading wins.
	auto, err := NewSession(SessionConfig{
		AppID: "s-auto", ModelName: "tiny", Model: model, Labels: labels,
		Mode: ModeAuto, Conn: dial(t, addr), Network: fastNetwork,
	})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Mode() != ModeFull {
		t.Errorf("auto resolved to %s, want full", auto.Mode())
	}

	// With the privacy constraint, auto must keep at least one layer
	// local.
	private, err := NewSession(SessionConfig{
		AppID: "s-auto-p", ModelName: "tiny", Model: model, Labels: labels,
		Mode: ModeAuto, Conn: dial(t, addr), Network: fastNetwork, RequireDenature: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if private.Mode() != ModePartial {
		t.Errorf("private auto resolved to %s, want partial", private.Mode())
	}
	if got := classify(t, private, 21); got == "" {
		t.Error("no result")
	}
	// Privacy invariant: image dropped before offload.
	if v, _ := private.App().Global(mlapp.GlobalImage); v != nil {
		t.Error("image should be nil after partial inference")
	}
}

func TestSessionLocalFallback(t *testing.T) {
	addr := startServer(t)
	conn := dial(t, addr)
	conn.Close()
	s, err := NewSession(SessionConfig{
		AppID: "s-fb", ModelName: "tiny", Model: tinyModel(t), Labels: labels,
		Mode: ModeFull, Conn: conn, LocalFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := classify(t, s, 9); got == "" {
		t.Error("fallback produced no result")
	}
	if st := s.Stats(); st.LocalFallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", st.LocalFallbacks)
	}
}

func TestSessionValidation(t *testing.T) {
	model := tinyModel(t)
	if _, err := NewSession(SessionConfig{ModelName: "x", Model: model, Mode: ModeFull}); err == nil {
		t.Error("offloading mode without conn should fail")
	}
	if _, err := NewSession(SessionConfig{Mode: ModeLocal}); err == nil {
		t.Error("missing model should fail")
	}
	if _, err := NewSession(SessionConfig{ModelName: "x", Model: model}); err == nil {
		t.Error("missing mode should fail")
	}
	if _, err := NewSession(SessionConfig{
		AppID: "a", ModelName: "x", Model: model, Mode: ModePartial,
		Conn: &client.Conn{}, SplitLabel: "42nd_conv",
	}); err == nil || !strings.Contains(err.Error(), "partition point") {
		t.Errorf("bad split label err = %v", err)
	}
}

func TestDefaultCatalog(t *testing.T) {
	cat, err := DefaultCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 2 {
		t.Errorf("catalog has %d bundles, want 2", cat.Len())
	}
	full := mlapp.FullRegistry()
	if _, ok := cat.Lookup(full.CodeHash()); !ok {
		t.Error("full bundle missing")
	}
}

func TestModeString(t *testing.T) {
	tests := []struct {
		mode Mode
		want string
	}{
		{ModeLocal, "local"}, {ModeFull, "full"}, {ModePartial, "partial"},
		{ModeAuto, "auto"}, {Mode(42), "mode(42)"},
	}
	for _, tt := range tests {
		if got := tt.mode.String(); got != tt.want {
			t.Errorf("%d = %q, want %q", int(tt.mode), got, tt.want)
		}
	}
}

// TestScreenUpdateFromServer demonstrates the paper's claim that the edge
// server can even change the client's screen: the result snapshot carries a
// DOM mutation made at the server.
func TestScreenUpdateFromServer(t *testing.T) {
	addr := startServer(t)
	s, err := NewSession(SessionConfig{
		AppID: "s-dom", ModelName: "tiny", Model: tinyModel(t), Labels: labels,
		Mode: ModeFull, Conn: dial(t, addr),
	})
	if err != nil {
		t.Fatal(err)
	}
	before := s.App().DOM().Find(mlapp.ResultID).Text
	got := classify(t, s, 30)
	after := s.App().DOM().Find(mlapp.ResultID).Text
	if after == before || after != got {
		t.Errorf("DOM result = %q -> %q, want the server-computed %q", before, after, got)
	}
}

package sim

import (
	"fmt"
	"time"

	"websnap/internal/netem"
	"websnap/internal/partition"
)

// SweepPoint is one bandwidth setting's outcome in an ablation sweep: how
// the dynamic partition decision and the pre-sending benefit change with
// the network.
type SweepPoint struct {
	BandwidthMbps float64
	// BestLabel is the privacy-constrained partition choice at this
	// bandwidth.
	BestLabel string
	// BestTotal is that choice's estimated inference time.
	BestTotal time.Duration
	// FullOffload is the unconstrained full-offload (Input) time.
	FullOffload time.Duration
	// ClientOnly is the pure local execution time (bandwidth-invariant;
	// repeated for easy plotting).
	ClientOnly time.Duration
	// BeforeACK and AfterACK are the Fig 6 offloading configurations at
	// this bandwidth.
	BeforeACK, AfterACK time.Duration
}

// BandwidthSweep evaluates the offloading configurations and the dynamic
// partition choice for one model across a range of bandwidths — the
// ablation behind the paper's "runtime network status" input to
// partitioning (§III.B.2).
func BandwidthSweep(modelName string, mbps []float64) ([]SweepPoint, error) {
	if len(mbps) == 0 {
		return nil, fmt.Errorf("sim: empty bandwidth list")
	}
	base, err := NewScenario(modelName)
	if err != nil {
		return nil, err
	}
	clientOnly, err := base.ClientOnly()
	if err != nil {
		return nil, err
	}
	points := make([]SweepPoint, 0, len(mbps))
	for _, m := range mbps {
		if m <= 0 {
			return nil, fmt.Errorf("sim: non-positive bandwidth %f", m)
		}
		sc := *base
		sc.Network = netem.Profile{BandwidthBitsPerSec: m * 1e6, Latency: base.Network.Latency}
		plan, err := partition.Analyze(sc.Net, sc.PartitionConfig())
		if err != nil {
			return nil, err
		}
		best, err := plan.Choose(true)
		if err != nil {
			return nil, err
		}
		full, err := plan.Choose(false)
		if err != nil {
			return nil, err
		}
		before, err := sc.OffloadBeforeACK()
		if err != nil {
			return nil, err
		}
		after, err := sc.OffloadAfterACK()
		if err != nil {
			return nil, err
		}
		points = append(points, SweepPoint{
			BandwidthMbps: m,
			BestLabel:     best.Point.Label,
			BestTotal:     best.Total,
			FullOffload:   full.Total,
			ClientOnly:    clientOnly.Total(),
			BeforeACK:     before.Total(),
			AfterACK:      after.Total(),
		})
	}
	return points, nil
}

package sim

import (
	"reflect"
	"testing"
)

func TestPipelineSweepShape(t *testing.T) {
	cfg := PipelineConfig{
		ModelName:      "googlenet",
		Depths:         []int{2, 3},
		BandwidthsMbps: []float64{30},
		LoadsMillis:    []float64{0, 50},
		Requests:       20,
	}
	points, err := PipelineSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Per (bandwidth, load) cell: one local row, one 2way row, one chain
	// row per depth.
	wantRows := 1 * 2 * (1 + 1 + 2)
	if len(points) != wantRows {
		t.Fatalf("got %d rows, want %d", len(points), wantRows)
	}
	perPolicy := map[string]int{}
	for _, p := range points {
		perPolicy[p.Policy]++
		if p.Requests != 20 {
			t.Errorf("%s row has %d requests, want 20", p.Policy, p.Requests)
		}
		if p.P50Millis <= 0 || p.P50Millis > p.P95Millis || p.P95Millis > p.P99Millis {
			t.Errorf("%s depth %d: unsorted percentiles %+v", p.Policy, p.Depth, p)
		}
		for name, share := range map[string]float64{
			"remote": p.RemoteShare, "local": p.LocalShare, "degraded": p.DegradedShare,
		} {
			if share < 0 || share > 1 {
				t.Errorf("%s depth %d: %s share %f out of range", p.Policy, p.Depth, name, share)
			}
		}
		switch p.Policy {
		case PipelinePolicyLocal:
			if p.LocalShare != 1 {
				t.Errorf("local policy row has local share %f", p.LocalShare)
			}
		case PipelinePolicyTwoWay, PipelinePolicyChain:
			if got := p.RemoteShare + p.LocalShare; got < 0.999 || got > 1.001 {
				t.Errorf("%s: remote+local share = %f, want 1", p.Policy, got)
			}
			if p.MeanCuts > float64(p.Depth) {
				t.Errorf("%s: mean cuts %f exceeds depth %d", p.Policy, p.MeanCuts, p.Depth)
			}
		}
	}
	if perPolicy[PipelinePolicyLocal] != 2 || perPolicy[PipelinePolicyTwoWay] != 2 || perPolicy[PipelinePolicyChain] != 4 {
		t.Fatalf("policy row counts = %+v", perPolicy)
	}
}

// TestPipelineSweepDeterministic pins the seeded run: identical configs
// give identical sweeps, so BENCH_pipeline.json diffs mean real changes.
func TestPipelineSweepDeterministic(t *testing.T) {
	cfg := PipelineConfig{
		Depths:         []int{3},
		BandwidthsMbps: []float64{30},
		LoadsMillis:    []float64{40},
		Requests:       10,
	}
	a, err := PipelineSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PipelineSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sweep not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestPipelineChainNeverWorseThanLocal: the planner always holds local
// execution as the floor, so no chain row's tail may exceed it.
func TestPipelineChainNeverWorseThanLocal(t *testing.T) {
	cfg := PipelineConfig{
		Depths:         []int{2, 4},
		BandwidthsMbps: []float64{5, 100},
		LoadsMillis:    []float64{0, 200},
		Requests:       15,
	}
	points, err := PipelineSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	localP99 := map[[2]float64]float64{}
	for _, p := range points {
		if p.Policy == PipelinePolicyLocal {
			localP99[[2]float64{p.BandwidthMbps, p.LoadMillis}] = p.P99Millis
		}
	}
	const slack = 1e-9
	for _, p := range points {
		if p.Policy == PipelinePolicyLocal {
			continue
		}
		if floor, ok := localP99[[2]float64{p.BandwidthMbps, p.LoadMillis}]; ok && p.P99Millis > floor+slack {
			t.Errorf("%s depth %d @ %gMbps/%gms: p99 %f > local %f",
				p.Policy, p.Depth, p.BandwidthMbps, p.LoadMillis, p.P99Millis, floor)
		}
	}
}

package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"websnap/internal/fleet"
	"websnap/internal/obs"
	"websnap/internal/protocol"
	"websnap/internal/telemetry"
)

// FleetConfig parameterizes the fleet sweep: many heterogeneous edge
// servers, thousands of closed-loop full-offload clients, and a placement
// policy deciding which server each session lands on.
type FleetConfig struct {
	// RequestsPerClient is how many closed-loop inferences each client
	// session performs.
	RequestsPerClient int
	// RoamEvery forces a handoff after this many requests: the client
	// leaves its current server's coverage and the placement policy
	// re-places the session among the remaining members. 0 disables
	// roaming.
	RoamEvery int
	// QueueDepth is each server's admission queue capacity; arrivals
	// beyond it are rejected and the client falls back to full local
	// execution.
	QueueDepth int
	// Capacities cycles worker counts across the fleet, making it
	// heterogeneous (e.g. {2, 1, 4}: server 0 has 2 workers, server 1
	// has 1, server 2 has 4, server 3 has 2 again, ...).
	Capacities []int
	// BackhaulFactor is how much faster the wired server-to-server link
	// is than the client's wireless uplink. Peer blob fetches (a server
	// pulling a model it lacks from the fleet member that holds it) ride
	// the backhaul instead of the client link.
	BackhaulFactor float64
	// ThinkMax is the upper bound of each client's uniform think time
	// between inferences. Fleet clients are interactive web apps that
	// infer occasionally, not hot loops; the default scales to 100x the
	// per-request service time, which puts a thousand-session fleet near
	// its saturation knee at the top of the default server-count sweep.
	ThinkMax time.Duration
	// StoreEvictEvery models a byte-capped session store: after this many
	// completed executions, cap pressure on a server evicts its model
	// blob, and the next request it serves must re-resolve the model —
	// a peer backhaul fetch while any fleet member still holds the blob,
	// a client re-upload otherwise. 0 models unbounded stores.
	StoreEvictEvery int
	// SLOObjective, when positive, scores every completed inference
	// against a client-observed latency objective using the real
	// telemetry.SLO burn-rate engine driven by the simulated clock
	// (5 s / 60 s windows in simulated time), so a policy's tail behavior
	// shows up as the same burn alerts production would raise. 0 disables
	// SLO scoring.
	SLOObjective time.Duration
	// SLOGoal is the good-event ratio target for SLOObjective (0 = the
	// engine default, 0.99).
	SLOGoal float64
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.RequestsPerClient <= 0 {
		c.RequestsPerClient = 6
	}
	if c.RoamEvery < 0 {
		c.RoamEvery = 0
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if len(c.Capacities) == 0 {
		c.Capacities = []int{2, 1, 4}
	}
	if c.BackhaulFactor <= 0 {
		c.BackhaulFactor = 10
	}
	return c
}

// FleetPoint is one (policy, fleet size) cell's outcome.
type FleetPoint struct {
	// Policy is the placement policy that chose every session's server.
	Policy string `json:"policy"`
	// Servers is the fleet size; Clients the closed-loop session count.
	Servers int `json:"servers"`
	Clients int `json:"clients"`
	// Completed counts finished inferences (offloaded + local fallback);
	// Fallbacks the subset a saturated server rejected; Handoffs the
	// mid-session placements forced by roaming.
	Completed int `json:"completed"`
	Fallbacks int `json:"fallbacks"`
	Handoffs  int `json:"handoffs"`
	// Throughput is completed inferences per simulated second across the
	// whole fleet.
	Throughput float64 `json:"throughputPerSec"`
	// P50/P95/P99 are client-observed latency percentiles in
	// milliseconds, measured from the user event to the result on screen.
	P50Millis float64 `json:"p50Millis"`
	P95Millis float64 `json:"p95Millis"`
	P99Millis float64 `json:"p99Millis"`
	// Mix is the decision mix (full offloads vs overload fallbacks) in
	// the client audit vocabulary.
	Mix []obs.PathCount `json:"mix"`
	// ExecPerServer is each server's completed-execution count, in server
	// order — the placement spread. Consistent hashing ignores capacity,
	// so heterogeneous fleets show up here as load imbalance.
	ExecPerServer []int `json:"execPerServer"`
	// ClientModelUploadBytes is what clients actually shipped over the
	// wireless link to seed models. With content-addressed sharing the
	// whole fleet needs exactly one client upload per distinct model.
	ClientModelUploadBytes int64 `json:"clientModelUploadBytes"`
	// ReuploadBytesSaved is the wireless bytes the blob index avoided:
	// every (session, new server) pair that would have re-uploaded the
	// model without sharing, resolved instead by reference.
	ReuploadBytesSaved int64 `json:"reuploadBytesSaved"`
	// PeerFetchBytes is backhaul traffic spent pulling blobs between
	// servers — the wired cost that buys the wireless savings.
	PeerFetchBytes int64 `json:"peerFetchBytes"`
	// StoreEvictions counts model blobs dropped by bounded-store cap
	// pressure (FleetConfig.StoreEvictEvery); EvictionRefetchBytes is the
	// transfer the evictions forced — backhaul re-fetches plus any client
	// re-uploads when no fleet member still held the blob.
	StoreEvictions       int   `json:"storeEvictions,omitempty"`
	EvictionRefetchBytes int64 `json:"evictionRefetchBytes,omitempty"`
	// SLOBad counts completed inferences slower than
	// FleetConfig.SLOObjective; SLOBurns counts transitions into the
	// burning state (both burn windows over threshold) during the run;
	// SLOLongBurn is the long-window burn rate at the end of the run.
	// All zero when SLO scoring is disabled.
	SLOBad      uint64  `json:"sloBad,omitempty"`
	SLOBurns    int     `json:"sloBurns,omitempty"`
	SLOLongBurn float64 `json:"sloLongBurn,omitempty"`
}

// FallbackRate is the fraction of inferences that fell back to local
// execution.
func (p FleetPoint) FallbackRate() float64 {
	if p.Completed == 0 {
		return 0
	}
	return float64(p.Fallbacks) / float64(p.Completed)
}

// fleetSim is the deterministic discrete-event model of a fleet of edge
// servers shared by roaming full-offload clients. Placement runs the real
// policy code (fleet.Rank over protocol.FleetServer views with live load
// hints); the wire registry's TTL/staleness behavior is exercised by the
// integration tests — the sim isolates what the policies do at scale.
type fleetSim struct {
	sc  *Scenario
	cfg FleetConfig
	// clientPrep: full app-state capture + upload. service: one worker's
	// occupancy per request (restore + full forward pass + result
	// capture). clientPost: result download + restore. localFull: the
	// whole model on the client device, the fallback path.
	clientPrep time.Duration
	service    time.Duration
	clientPost time.Duration
	localFull  time.Duration
	// modelUp is the wireless model pre-send time; peerFetch the same
	// bytes over the inter-server backhaul.
	modelUp    time.Duration
	peerFetch  time.Duration
	modelBytes int64
	thinkMax   time.Duration
}

// newFleetSim derives all segment durations from the scenario's calibrated
// cost models for full offloading (the fleet ships whole snapshots; the
// partial-split regime is LoadSweep's subject).
func newFleetSim(sc *Scenario, cfg FleetConfig) (*fleetSim, error) {
	cfg = cfg.withDefaults()
	if cfg.SLOGoal != 0 && (cfg.SLOGoal <= 0 || cfg.SLOGoal >= 1) {
		return nil, fmt.Errorf("sim: SLO goal must be in (0,1), got %v", cfg.SLOGoal)
	}
	if cfg.SLOGoal != 0 && cfg.SLOObjective <= 0 {
		return nil, fmt.Errorf("sim: SLOGoal requires SLOObjective")
	}
	infos, err := sc.Net.Describe()
	if err != nil {
		return nil, err
	}
	serverExec, err := sc.Server.RangeTime(infos, 0, len(infos))
	if err != nil {
		return nil, err
	}
	clientExec, err := sc.Client.RangeTime(infos, 0, len(infos))
	if err != nil {
		return nil, err
	}
	upBytes := sc.StateBytes + sc.InputTextBytes
	downBytes := sc.StateBytes + sc.ResultTextBytes
	fs := &fleetSim{
		sc:         sc,
		cfg:        cfg,
		clientPrep: sc.Client.SnapshotTime(upBytes) + sc.Network.TransferTime(upBytes),
		service:    sc.Server.SnapshotTime(upBytes) + serverExec + sc.Server.SnapshotTime(downBytes),
		clientPost: sc.Network.TransferTime(downBytes) + sc.Client.SnapshotTime(downBytes),
		localFull:  clientExec,
		modelBytes: sc.ModelUploadBytes(),
	}
	fs.modelUp = sc.Network.TransferTime(fs.modelBytes)
	fs.peerFetch = time.Duration(float64(fs.modelUp) / cfg.BackhaulFactor)
	fs.thinkMax = cfg.ThinkMax
	if fs.thinkMax <= 0 {
		fs.thinkMax = 100 * fs.service
	}
	return fs, nil
}

// evPlace is a fleet-only event kind: the user event fired and the client
// asks the placement policy for a server before shipping the snapshot.
const evPlace = evDone + 1

// fleetSrv is one simulated edge server.
type fleetSrv struct {
	addr     string
	capacity int // worker-pool size
	busy     int
	queue    []pendingReq
	hasBlob  bool // content-addressed model blob present
	executed int
}

// run simulates nServers heterogeneous servers under clients closed-loop
// roaming sessions and returns the resulting FleetPoint.
func (fs *fleetSim) run(nServers, clients int, policy fleet.Policy) FleetPoint {
	var (
		events    eventHeap
		seq       int
		srvs      = make([]fleetSrv, nServers)
		cur       = make([]int, clients) // each client's current server
		visited   = make([][]bool, clients)
		remaining = make([]int, clients)
		rngs      = make([]xorshift, clients)
		latencies []time.Duration
		fallbacks int
		handoffs  int
		makespan  time.Duration
		audit     = obs.NewAuditor(obs.AuditorOptions{})
		sloBad    uint64
		sloBurns  int
		slo       *telemetry.SLO
		simNow    time.Duration // virtual clock feeding the SLO engine
		uploaded  int64         // actual client model bytes
		would     int64         // what a sharing-free fleet would have uploaded
		peer      int64         // backhaul blob-fetch bytes
		evictions int           // bounded-store cap evictions of the model blob
		refetch   int64         // bytes those evictions forced back over the wire
	)
	for i := range srvs {
		srvs[i] = fleetSrv{
			addr:     fmt.Sprintf("edge-%d", i),
			capacity: fs.cfg.Capacities[i%len(fs.cfg.Capacities)],
		}
	}
	push := func(ev *simEvent) {
		ev.seq = seq
		seq++
		heap.Push(&events, ev)
	}
	// view snapshots the fleet as a registry view would serve it:
	// advertised capacity plus a live load hint (queueing estimate and
	// saturation), excluding the server the roaming client just left.
	view := func(exclude int) []protocol.FleetServer {
		out := make([]protocol.FleetServer, 0, nServers)
		for i := range srvs {
			if i == exclude {
				continue
			}
			s := &srvs[i]
			qms := float64(len(s.queue)) * fs.service.Seconds() * 1000 / float64(s.capacity)
			out = append(out, protocol.FleetServer{
				Addr:     s.addr,
				Capacity: s.capacity,
				Load: &protocol.LoadHint{
					Workers:        s.capacity,
					Busy:           s.busy,
					QueueDepth:     len(s.queue),
					QueueCap:       fs.cfg.QueueDepth,
					QueueingMillis: qms,
					Saturated:      len(s.queue) >= fs.cfg.QueueDepth,
				},
			})
		}
		return out
	}
	byAddr := make(map[string]int, nServers)
	for i := range srvs {
		byAddr[srvs[i].addr] = i
	}
	place := func(c, exclude int) int {
		target, ok := fleet.Pick(policy, fmt.Sprintf("session-%d", c), view(exclude))
		if !ok {
			return 0 // single-server fleet with that server excluded
		}
		return byAddr[target.Addr]
	}
	// anyHolder reports whether some fleet member still holds the model
	// blob. With unbounded stores this is monotone after the first upload;
	// bounded-store eviction can take it back to false.
	anyHolder := func() bool {
		for i := range srvs {
			if srvs[i].hasBlob {
				return true
			}
		}
		return false
	}
	// resolveBlob charges server s with acquiring the model blob it lacks
	// and returns the transfer time: a backhaul pull while any peer still
	// holds the blob, the client's wireless upload otherwise.
	resolveBlob := func(s int) time.Duration {
		if anyHolder() {
			srvs[s].hasBlob = true
			peer += fs.modelBytes
			return fs.peerFetch
		}
		srvs[s].hasBlob = true
		uploaded += fs.modelBytes
		return fs.modelUp
	}
	// preSend models the content-addressed pre-send when client c meets
	// server s for the first time in its session, returning the extra
	// time the first request waits on the model transfer. Sharing is
	// always on; the no-sharing baseline is accounted in `would`.
	preSend := func(c, s int) time.Duration {
		if visited[c][s] {
			return 0
		}
		visited[c][s] = true
		would += fs.modelBytes
		if srvs[s].hasBlob {
			return 0 // server already holds the blob: ref hit, no transfer
		}
		return resolveBlob(s)
	}
	think := func(c int) time.Duration {
		return time.Duration(rngs[c].next() % uint64(fs.thinkMax))
	}
	// startRequest begins client c's next inference after time t. When the
	// request needs a placement (session start, or the roaming schedule
	// forces a handoff), an evPlace fires at the user-event time so the
	// policy sees the fleet's live queue state then — not the state when
	// the previous request finished. ev.worker carries the server to
	// exclude (-1 at session start, the abandoned server on a handoff).
	startRequest := func(c int, t time.Duration) {
		reqIdx := fs.cfg.RequestsPerClient - remaining[c]
		remaining[c]--
		start := t + think(c)
		req := pendingReq{client: c, start: start}
		if reqIdx == 0 {
			push(&simEvent{at: start, kind: evPlace, worker: -1, req: req})
			return
		}
		if fs.cfg.RoamEvery > 0 && reqIdx%fs.cfg.RoamEvery == 0 {
			handoffs++
			push(&simEvent{at: start, kind: evPlace, worker: cur[c], req: req})
			return
		}
		push(&simEvent{at: start + fs.clientPrep, kind: evArrive, worker: cur[c], req: req})
	}
	finish := func(req pendingReq, t time.Duration) {
		latencies = append(latencies, t-req.start)
		if t > makespan {
			makespan = t
		}
		if slo != nil {
			if t > simNow {
				simNow = t
			}
			if t-req.start > fs.cfg.SLOObjective {
				sloBad++
			}
			slo.Observe(t - req.start)
		}
		if remaining[req.client] > 0 {
			startRequest(req.client, t)
		}
	}
	dispatch := func(s int, t time.Duration) {
		srv := &srvs[s]
		for srv.busy < srv.capacity && len(srv.queue) > 0 {
			req := srv.queue[0]
			srv.queue = srv.queue[1:]
			srv.busy++
			push(&simEvent{at: t + fs.service, kind: evDone, worker: s,
				batch: []pendingReq{req}})
		}
	}

	if fs.cfg.SLOObjective > 0 {
		// The real burn-rate engine scores the run on the simulated clock;
		// short windows keep burn detection meaningful over makespans of
		// simulated seconds rather than operational hours.
		slo, _ = telemetry.NewSLO(telemetry.SLOConfig{
			Name:        "sim-fleet",
			Objective:   fs.cfg.SLOObjective,
			Goal:        fs.cfg.SLOGoal,
			ShortWindow: 5 * time.Second,
			LongWindow:  60 * time.Second,
			Now:         func() time.Time { return time.Unix(0, 0).Add(simNow) },
			OnBurn:      func(telemetry.SLOStatus) { sloBurns++ },
		})
	}
	for c := 0; c < clients; c++ {
		remaining[c] = fs.cfg.RequestsPerClient
		visited[c] = make([]bool, nServers)
		rngs[c] = xorshift{s: uint64(c)*2654435761 + 0x9e3779b97f4a7c15}
		startRequest(c, 0)
	}
	for events.Len() > 0 {
		ev := heap.Pop(&events).(*simEvent)
		if ev.kind == evPlace {
			c := ev.req.client
			cur[c] = place(c, ev.worker)
			prep := fs.clientPrep + preSend(c, cur[c])
			push(&simEvent{at: ev.at + prep, kind: evArrive, worker: cur[c], req: ev.req})
			continue
		}
		srv := &srvs[ev.worker]
		switch ev.kind {
		case evArrive:
			if !srv.hasBlob {
				// Cap pressure evicted the model since this session last
				// used this server: re-resolve the blob, then the snapshot
				// arrives once the transfer lands.
				d := resolveBlob(ev.worker)
				refetch += fs.modelBytes
				push(&simEvent{at: ev.at + d, kind: evArrive, worker: ev.worker, req: ev.req})
				break
			}
			if srv.busy >= srv.capacity && len(srv.queue) >= fs.cfg.QueueDepth {
				// Queue full: the server sheds, the client runs the whole
				// model locally.
				fallbacks++
				done := ev.at + fs.localFull
				audit.Record(obs.Decision{
					Path: obs.PathFallback, Reason: "overloaded",
					Server: srv.addr, Placement: string(policy),
					Measured: done - ev.req.start, HintAge: -1,
				})
				finish(ev.req, done)
				break
			}
			ev.req.arrive = ev.at
			srv.queue = append(srv.queue, ev.req)
			dispatch(ev.worker, ev.at)
		case evDone:
			srv.busy--
			for _, req := range ev.batch {
				srv.executed++
				if fs.cfg.StoreEvictEvery > 0 && srv.hasBlob &&
					srv.executed%fs.cfg.StoreEvictEvery == 0 {
					// The byte-capped store crossed its budget; the model
					// blob is the LRU casualty.
					srv.hasBlob = false
					evictions++
				}
				done := ev.at + fs.clientPost
				audit.Record(obs.Decision{
					Path: obs.PathFull, Server: srv.addr,
					Placement: string(policy),
					Measured:  done - req.start, HintAge: -1,
				})
				finish(req, done)
			}
			dispatch(ev.worker, ev.at)
		}
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pt := FleetPoint{
		Policy:                 string(policy),
		Servers:                nServers,
		Clients:                clients,
		Completed:              len(latencies),
		Fallbacks:              fallbacks,
		Handoffs:               handoffs,
		P50Millis:              millis(percentile(latencies, 0.50)),
		P95Millis:              millis(percentile(latencies, 0.95)),
		P99Millis:              millis(percentile(latencies, 0.99)),
		Mix:                    audit.Summary().Mix,
		ExecPerServer:          make([]int, nServers),
		ClientModelUploadBytes: uploaded,
		ReuploadBytesSaved:     would - uploaded,
		PeerFetchBytes:         peer,
		StoreEvictions:         evictions,
		EvictionRefetchBytes:   refetch,
		SLOBad:                 sloBad,
		SLOBurns:               sloBurns,
	}
	if slo != nil {
		simNow = makespan
		pt.SLOLongBurn = slo.Status().LongBurn
	}
	for i := range srvs {
		pt.ExecPerServer[i] = srvs[i].executed
	}
	if makespan > 0 {
		pt.Throughput = float64(pt.Completed) / makespan.Seconds()
	}
	return pt
}

func millis(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// FleetSweep simulates roaming full-offload clients of one model against
// fleets of increasing size under each placement policy. The same client
// population is replayed against every (policy, fleet size) cell, so the
// cells differ only in what the policy decided — the comparison the
// placement layer is designed around: consistent hashing gives stable,
// capacity-blind placement; load-weighted placement trades some stability
// for tail latency on heterogeneous fleets. Roaming handoffs exercise the
// content-addressed blob index: only the first client upload of the model
// rides the wireless link, every later (session, server) encounter
// resolves by reference.
func FleetSweep(modelName string, serverCounts []int, clients int, policies []fleet.Policy, cfg FleetConfig) ([]FleetPoint, error) {
	if len(serverCounts) == 0 {
		return nil, fmt.Errorf("sim: empty server-count list")
	}
	if len(policies) == 0 {
		return nil, fmt.Errorf("sim: empty policy list")
	}
	if clients <= 0 {
		return nil, fmt.Errorf("sim: non-positive client count %d", clients)
	}
	sc, err := NewScenario(modelName)
	if err != nil {
		return nil, err
	}
	fs, err := newFleetSim(sc, cfg)
	if err != nil {
		return nil, err
	}
	points := make([]FleetPoint, 0, len(serverCounts)*len(policies))
	for _, p := range policies {
		for _, n := range serverCounts {
			if n <= 0 {
				return nil, fmt.Errorf("sim: non-positive server count %d", n)
			}
			points = append(points, fs.run(n, clients, p))
		}
	}
	return points, nil
}

package sim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"websnap/internal/costmodel"
	"websnap/internal/netem"
	"websnap/internal/partition"
)

// Pipeline-sweep policies.
const (
	// PolicyLocal executes everything on the client.
	PipelinePolicyLocal = "local"
	// PolicyTwoWay is the paper's baseline: the legacy single-split
	// partial offload (client + one server, snapshot text encoding).
	PipelinePolicyTwoWay = "2way"
	// PolicyChain is the K-way pipeline: the cut-set DP over a chain of
	// servers with raw float32 hop-to-hop relay frames.
	PipelinePolicyChain = "chain"
)

// pipelineRawBytesPerValue mirrors the live chain executor: hop-to-hop
// relay frames carry raw little-endian float32s, 4 bytes per activation,
// instead of the snapshot's textual encoding.
const pipelineRawBytesPerValue = 4

// pipelineChainOverheadBytes approximates one chain frame's non-tensor
// bytes (JSON header with the hop manifest).
const pipelineChainOverheadBytes = 512

// PipelineConfig parametrizes the pipeline sweep.
type PipelineConfig struct {
	// ModelName selects the benchmark model (GoogLeNet by default).
	ModelName string
	// Depths are the chain depths (server counts) to sweep.
	Depths []int
	// BandwidthsMbps sweeps the client uplink; inter-server links stay at
	// InterEdgeMbps (the wired edge backbone).
	BandwidthsMbps []float64
	InterEdgeMbps  float64
	// LoadsMillis sweeps the mean per-server queueing delay; each request
	// draws every hop's delay from an exponential with this mean.
	LoadsMillis []float64
	// Requests is the number of simulated requests per sweep point.
	Requests int
	// Seed drives the deterministic queue-delay draws.
	Seed uint64
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.ModelName == "" {
		c.ModelName = "googlenet"
	}
	if len(c.Depths) == 0 {
		c.Depths = []int{2, 3, 4}
	}
	if len(c.BandwidthsMbps) == 0 {
		c.BandwidthsMbps = []float64{5, 30, 100}
	}
	if c.InterEdgeMbps == 0 {
		c.InterEdgeMbps = 200
	}
	if len(c.LoadsMillis) == 0 {
		c.LoadsMillis = []float64{0, 20, 80}
	}
	if c.Requests == 0 {
		c.Requests = 100
	}
	if c.Seed == 0 {
		c.Seed = 20260808
	}
	return c
}

// PipelinePoint is one (policy, depth, bandwidth, load) cell of the sweep.
type PipelinePoint struct {
	Policy        string  `json:"policy"`
	Depth         int     `json:"depth"`
	BandwidthMbps float64 `json:"bandwidthMbps"`
	LoadMillis    float64 `json:"loadMillis"`
	Requests      int     `json:"requests"`

	// Latency percentiles across the simulated requests.
	P50Millis float64 `json:"p50Millis"`
	P95Millis float64 `json:"p95Millis"`
	P99Millis float64 `json:"p99Millis"`

	// Decision mix: how often the policy's planner kept the request on
	// the preferred remote path versus degrading. Local executions (the
	// plan lost to client-only compute under the drawn load) are the
	// "local" share; for the chain policy, "degraded" counts plans that
	// collapsed below the target depth.
	RemoteShare   float64 `json:"remoteShare"`
	LocalShare    float64 `json:"localShare"`
	DegradedShare float64 `json:"degradedShare"`

	// MeanCuts is the average number of servers the chosen plan used
	// (0 for pure-local policies/requests).
	MeanCuts float64 `json:"meanCuts"`
}

// xorshift64 is the simulator's deterministic random stream.
type xorshift64 uint64

func (x *xorshift64) uniform() float64 {
	s := uint64(*x)
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	*x = xorshift64(s)
	// Top 53 bits to (0,1), strictly inside so ln stays finite.
	return (float64(s>>11) + 0.5) / (1 << 53)
}

// expDelay draws an exponential queueing delay with the given mean.
func (x *xorshift64) expDelay(meanMillis float64) time.Duration {
	if meanMillis <= 0 {
		return 0
	}
	return time.Duration(-meanMillis * math.Log(x.uniform()) * float64(time.Millisecond))
}

// PipelineSweep evaluates the chain-depth × bandwidth × load grid for the
// three policies. Every request re-plans against freshly drawn per-hop
// queueing delays — the same "live hints into the DP" loop the runtime
// executor runs — so the mix columns show when deeper chains stop paying.
func PipelineSweep(cfg PipelineConfig) ([]PipelinePoint, error) {
	cfg = cfg.withDefaults()
	sc, err := NewScenario(cfg.ModelName)
	if err != nil {
		return nil, err
	}
	clientOnly, err := sc.ClientOnly()
	if err != nil {
		return nil, err
	}
	local := clientOnly.Total()
	resultBytes := int64(pipelineRawBytesPerValue) * (sc.ResultTextBytes / int64(sc.TextBytesPerValue))
	if resultBytes <= 0 {
		resultBytes = pipelineRawBytesPerValue
	}

	rng := xorshift64(cfg.Seed)
	var points []PipelinePoint
	for _, mbps := range cfg.BandwidthsMbps {
		if mbps <= 0 {
			return nil, fmt.Errorf("sim: non-positive bandwidth %f", mbps)
		}
		uplink := netem.Profile{BandwidthBitsPerSec: mbps * 1e6, Latency: sc.Network.Latency}
		backbone := netem.Profile{BandwidthBitsPerSec: cfg.InterEdgeMbps * 1e6, Latency: time.Millisecond}
		for _, loadMillis := range cfg.LoadsMillis {
			// Local policy: load- and depth-invariant, one row per cell
			// for easy plotting.
			points = append(points, pipelineLocalPoint(local, mbps, loadMillis, cfg.Requests))

			// Two-way baseline: legacy single-split DP with the drawn
			// server queue delay.
			pt, err := pipelineTwoWay(sc, uplink, loadMillis, local, cfg.Requests, &rng)
			if err != nil {
				return nil, err
			}
			pt.BandwidthMbps, pt.LoadMillis = mbps, loadMillis
			points = append(points, pt)

			for _, depth := range cfg.Depths {
				if depth < 1 {
					return nil, fmt.Errorf("sim: chain depth %d < 1", depth)
				}
				pt, err := pipelineChain(sc, uplink, backbone, depth, loadMillis, local, resultBytes, cfg.Requests, &rng)
				if err != nil {
					return nil, err
				}
				pt.BandwidthMbps, pt.LoadMillis = mbps, loadMillis
				points = append(points, pt)
			}
		}
	}
	return points, nil
}

func pipelineLocalPoint(local time.Duration, mbps, loadMillis float64, requests int) PipelinePoint {
	m := millis(local)
	return PipelinePoint{
		Policy: PipelinePolicyLocal, Depth: 0,
		BandwidthMbps: mbps, LoadMillis: loadMillis, Requests: requests,
		P50Millis: m, P95Millis: m, P99Millis: m,
		LocalShare: 1,
	}
}

// pipelineTwoWay simulates the legacy 2-device policy: per request, draw
// the server queue delay, re-run the single-split DP, and take the better
// of the best split and local execution.
func pipelineTwoWay(sc *Scenario, uplink netem.Profile, loadMillis float64, local time.Duration, requests int, rng *xorshift64) (PipelinePoint, error) {
	pcfg := sc.PartitionConfig()
	pcfg.Network = uplink
	var latencies []time.Duration
	remote, localRuns, cuts := 0, 0, 0
	for i := 0; i < requests; i++ {
		pcfg.ServerQueueDelay = rng.expDelay(loadMillis)
		plan, err := partition.Analyze(sc.Net, pcfg)
		if err != nil {
			return PipelinePoint{}, err
		}
		best, err := plan.Choose(true)
		if err != nil {
			return PipelinePoint{}, err
		}
		if best.Total < local {
			latencies = append(latencies, best.Total)
			remote++
			cuts++
		} else {
			latencies = append(latencies, local)
			localRuns++
		}
	}
	pt := pipelineSummarize(PipelinePolicyTwoWay, 1, latencies)
	pt.RemoteShare = float64(remote) / float64(requests)
	pt.LocalShare = float64(localRuns) / float64(requests)
	pt.MeanCuts = float64(cuts) / float64(requests)
	return pt, nil
}

// pipelineChain simulates the K-way policy: per request, draw every hop's
// queue delay, run the cut-set DP over the full chain, and take the better
// of the chain plan and local execution. The chain is heterogeneous the
// way a real edge path is: the first hop is the paper's x86 server (the
// nearby cell), deeper hops the §IV.A GPU projection (the better-equipped
// aggregation site reachable only over the backbone) — heterogeneity is
// what deep cuts exploit, since with identical hops the latency DP
// correctly collapses to a single server. A plan that uses fewer servers
// than the target depth counts as degraded.
func pipelineChain(sc *Scenario, uplink, backbone netem.Profile, depth int, loadMillis float64, local time.Duration, resultBytes int64, requests int, rng *xorshift64) (PipelinePoint, error) {
	var latencies []time.Duration
	remote, localRuns, degraded, cuts := 0, 0, 0, 0
	for i := 0; i < requests; i++ {
		hops := make([]partition.Hop, depth+1)
		links := make([]netem.Profile, depth)
		hops[0] = partition.Hop{Device: sc.Client}
		for h := 1; h <= depth; h++ {
			dev := sc.Server
			if h > 1 {
				dev = costmodel.ServerX86GPU
			}
			hops[h] = partition.Hop{Device: dev, QueueDelay: rng.expDelay(loadMillis)}
			if h == 1 {
				links[h-1] = uplink
			} else {
				links[h-1] = backbone
			}
		}
		// Depth candidates: the runtime executor can shorten the chain,
		// so evaluate every prefix depth and keep the fastest plan.
		bestTotal := time.Duration(math.MaxInt64)
		bestDepth := 0
		for k := 1; k <= depth; k++ {
			plan, err := partition.AnalyzeChain(sc.Net, partition.ChainConfig{
				Hops:               hops[:k+1],
				Links:              links[:k],
				TextBytesPerValue:  pipelineRawBytesPerValue,
				StateOverheadBytes: pipelineChainOverheadBytes,
				ResultBytes:        resultBytes,
			})
			if err != nil {
				return PipelinePoint{}, err
			}
			cand, err := plan.Choose(true)
			if err != nil {
				// Too few cut points for this depth: deeper prefixes
				// only get worse, stop here.
				break
			}
			if cand.Total < bestTotal {
				bestTotal = cand.Total
				bestDepth = k
			}
		}
		switch {
		case bestDepth == 0 || bestTotal >= local:
			latencies = append(latencies, local)
			localRuns++
		default:
			latencies = append(latencies, bestTotal)
			remote++
			cuts += bestDepth
			if bestDepth < depth {
				degraded++
			}
		}
	}
	pt := pipelineSummarize(PipelinePolicyChain, depth, latencies)
	pt.RemoteShare = float64(remote) / float64(requests)
	pt.LocalShare = float64(localRuns) / float64(requests)
	pt.DegradedShare = float64(degraded) / float64(requests)
	pt.MeanCuts = float64(cuts) / float64(requests)
	return pt, nil
}

func pipelineSummarize(policy string, depth int, latencies []time.Duration) PipelinePoint {
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	return PipelinePoint{
		Policy: policy, Depth: depth, Requests: len(latencies),
		P50Millis: millis(percentile(latencies, 0.50)),
		P95Millis: millis(percentile(latencies, 0.95)),
		P99Millis: millis(percentile(latencies, 0.99)),
	}
}

// Package sim reproduces the paper's evaluation (§IV) deterministically:
// it combines the calibrated device cost models, the network model, and
// sizes measured from the real snapshot encoder into end-to-end inference
// timelines for every configuration of Fig 6, the phase breakdown of
// Fig 7, the partition sweep of Fig 8, and the installation-overhead
// comparison of Table 1.
//
// Functional correctness of the pipeline is established separately by the
// real TCP integration tests; the simulator's job is the paper's *timing*
// shape on the paper's hardware, which a laptop cannot reproduce natively
// (DESIGN.md §1).
package sim

import (
	"encoding/json"
	"fmt"

	"websnap/internal/costmodel"
	"websnap/internal/mlapp"
	"websnap/internal/models"
	"websnap/internal/netem"
	"websnap/internal/nn"
	"websnap/internal/partition"
	"websnap/internal/snapshot"
	"websnap/internal/webapp"
)

// Scenario holds everything needed to simulate one benchmark app.
type Scenario struct {
	// ModelName is one of the models package names.
	ModelName string
	// Net is the built model.
	Net *nn.Network
	// Client and Server are the device latency models.
	Client, Server costmodel.Device
	// Network is the emulated link (30 Mbps in the paper).
	Network netem.Profile
	// TextBytesPerValue is the measured textual width of one activation
	// in a snapshot.
	TextBytesPerValue float64
	// StateBytes is the measured size of the app's snapshot without
	// feature data or model weights (Table 1's "snapshot except feature
	// data" in the pre-sent case).
	StateBytes int64
	// InputTextBytes is the measured textual size of the input image in
	// a snapshot.
	InputTextBytes int64
	// ResultTextBytes is the measured textual size of the result scores.
	ResultTextBytes int64
	// SpecBytes is the size of the model descriptor JSON that accompanies
	// a model upload.
	SpecBytes int64
	// Precision is the model quality tier both devices run at (empty
	// means float32). Int8 shrinks per-device compute by each device's
	// calibrated Int8Speedup; snapshot sizes are unchanged because cut
	// tensors are dequantized to float32 before capture.
	Precision nn.Precision
}

// labelsFor fabricates the label set each benchmark app displays.
func labelsFor(name string, classes int) []string {
	labels := make([]string, classes)
	for i := range labels {
		labels[i] = fmt.Sprintf("%s_label_%04d", name, i)
	}
	return labels
}

// NewScenario builds and measures the scenario for one benchmark model
// using the paper's environment (Odroid client, x86 server, 30 Mbps).
func NewScenario(modelName string) (*Scenario, error) {
	net, err := models.Build(modelName)
	if err != nil {
		return nil, err
	}
	return newScenarioFromNet(modelName, net)
}

func newScenarioFromNet(modelName string, net *nn.Network) (*Scenario, error) {
	sc := &Scenario{
		ModelName:         modelName,
		Net:               net,
		Client:            costmodel.ClientOdroid,
		Server:            costmodel.ServerX86,
		Network:           netem.WiFi30Mbps,
		TextBytesPerValue: partition.MeasuredTextBytesPerValue(),
	}
	if err := sc.measure(); err != nil {
		return nil, err
	}
	return sc, nil
}

// measure derives the scenario's snapshot sizes from the real app and the
// real snapshot encoder, rather than from assumed constants.
func (sc *Scenario) measure() error {
	outShape, err := sc.Net.OutputShape()
	if err != nil {
		return err
	}
	classes := outShape[len(outShape)-1]
	app, err := mlapp.NewFullApp("measure-"+sc.ModelName, sc.ModelName, sc.Net, labelsFor(sc.ModelName, classes))
	if err != nil {
		return err
	}
	// State snapshot: app with no image loaded, model spec-only.
	snap, err := snapshot.Capture(app, snapshot.Options{DefaultModelPolicy: snapshot.ModelSpecOnly})
	if err != nil {
		return err
	}
	bd, err := snap.Breakdown()
	if err != nil {
		return err
	}
	sc.StateBytes = bd.TotalBytes
	spec, err := nn.EncodeSpec(sc.Net)
	if err != nil {
		return err
	}
	sc.SpecBytes = int64(len(spec))

	inVol := 1
	for _, d := range sc.Net.InputShape() {
		inVol *= d
	}
	sc.InputTextBytes = sc.textBytes(inVol)
	resVol := 1
	for _, d := range outShape {
		resVol *= d
	}
	sc.ResultTextBytes = sc.textBytes(resVol)
	return nil
}

// textBytes converts an activation count to snapshot text bytes.
func (sc *Scenario) textBytes(values int) int64 {
	return int64(float64(values) * sc.TextBytesPerValue)
}

// measureEncodedArray returns the exact textual size of a Float32Array as
// the snapshot encoder renders it; used by tests to validate textBytes.
func measureEncodedArray(arr webapp.Float32Array) (int64, error) {
	data, err := json.Marshal([]float32(arr))
	if err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// PartitionConfig exposes the scenario as a partition.Config so the Fig 8
// sweep and the live partition chooser use identical parameters.
func (sc *Scenario) PartitionConfig() partition.Config {
	return partition.Config{
		Client:             sc.Client,
		Server:             sc.Server,
		Network:            sc.Network,
		TextBytesPerValue:  sc.TextBytesPerValue,
		StateOverheadBytes: sc.StateBytes,
		ResultBytes:        sc.ResultTextBytes,
		Precision:          sc.Precision,
	}
}

// ModelUploadBytes is the size of the pre-sent model files (descriptor +
// binary weights).
func (sc *Scenario) ModelUploadBytes() int64 {
	return sc.SpecBytes + sc.Net.ModelBytes()
}

package sim

import (
	"reflect"
	"testing"
	"time"

	"websnap/internal/fleet"
	"websnap/internal/obs"
)

func fleetPoints(t *testing.T, serverCounts []int, clients int, policies []fleet.Policy, cfg FleetConfig) []FleetPoint {
	t.Helper()
	pts, err := FleetSweep("googlenet", serverCounts, clients, policies, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

func TestFleetSweepValidation(t *testing.T) {
	pols := []fleet.Policy{fleet.PolicyHash}
	if _, err := FleetSweep("googlenet", nil, 8, pols, FleetConfig{}); err == nil {
		t.Error("empty server-count list should fail")
	}
	if _, err := FleetSweep("googlenet", []int{0}, 8, pols, FleetConfig{}); err == nil {
		t.Error("zero servers should fail")
	}
	if _, err := FleetSweep("googlenet", []int{2}, 0, pols, FleetConfig{}); err == nil {
		t.Error("zero clients should fail")
	}
	if _, err := FleetSweep("googlenet", []int{2}, 8, nil, FleetConfig{}); err == nil {
		t.Error("empty policy list should fail")
	}
	if _, err := FleetSweep("no-such-model", []int{2}, 8, pols, FleetConfig{}); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestFleetSweepDeterministic(t *testing.T) {
	cfg := FleetConfig{RequestsPerClient: 4, RoamEvery: 2}
	a := fleetPoints(t, []int{3}, 32, []fleet.Policy{fleet.PolicyLoadWeighted}, cfg)
	b := fleetPoints(t, []int{3}, 32, []fleet.Policy{fleet.PolicyLoadWeighted}, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("simulation not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

// TestFleetAllRequestsComplete: every inference finishes exactly once —
// offloaded or fallback, never lost, never duplicated — and the per-server
// execution counts reconcile with the total.
func TestFleetAllRequestsComplete(t *testing.T) {
	const clients, reqs = 48, 5
	cfg := FleetConfig{RequestsPerClient: reqs, RoamEvery: 2}
	for _, p := range []fleet.Policy{fleet.PolicyHash, fleet.PolicyLoadWeighted} {
		pt := fleetPoints(t, []int{4}, clients, []fleet.Policy{p}, cfg)[0]
		if got, want := pt.Completed, clients*reqs; got != want {
			t.Errorf("%s: completed = %d, want %d", p, got, want)
		}
		executed := 0
		for _, n := range pt.ExecPerServer {
			executed += n
		}
		if executed+pt.Fallbacks != pt.Completed {
			t.Errorf("%s: executed %d + fallbacks %d != completed %d",
				p, executed, pt.Fallbacks, pt.Completed)
		}
		var mixTotal int64
		for _, pc := range pt.Mix {
			mixTotal += pc.Count
			if pc.Path != obs.PathFull && pc.Path != obs.PathFallback {
				t.Errorf("%s: unexpected decision path %q in mix", p, pc.Path)
			}
		}
		if mixTotal != int64(pt.Completed) {
			t.Errorf("%s: audit decisions = %d, want %d (exactly one per inference)",
				p, mixTotal, pt.Completed)
		}
	}
}

// TestFleetReuploadAccounting: with the content-addressed blob index the
// whole fleet needs exactly one wireless model upload, and every later
// (session, server) encounter is bytes saved.
func TestFleetReuploadAccounting(t *testing.T) {
	pt := fleetPoints(t, []int{4}, 32, []fleet.Policy{fleet.PolicyHash},
		FleetConfig{RequestsPerClient: 6, RoamEvery: 2})[0]
	sc, err := NewScenario("googlenet")
	if err != nil {
		t.Fatal(err)
	}
	modelBytes := sc.ModelUploadBytes()
	if pt.ClientModelUploadBytes != modelBytes {
		t.Errorf("client model upload = %d bytes, want exactly one upload of %d",
			pt.ClientModelUploadBytes, modelBytes)
	}
	if pt.Handoffs == 0 {
		t.Fatal("no handoffs; the roaming path was never exercised")
	}
	// 32 sessions each meet at least their first server; every encounter
	// after the very first upload is saved wireless bytes.
	if pt.ReuploadBytesSaved < int64(31)*modelBytes {
		t.Errorf("re-upload bytes saved = %d, want >= %d (31 first encounters alone)",
			pt.ReuploadBytesSaved, int64(31)*modelBytes)
	}
	if pt.ReuploadBytesSaved%modelBytes != 0 {
		t.Errorf("saved bytes %d not a multiple of the model size %d",
			pt.ReuploadBytesSaved, modelBytes)
	}
	// Peer fetches cover at most one copy per remaining server.
	if pt.PeerFetchBytes > int64(3)*modelBytes {
		t.Errorf("peer fetch bytes = %d, want <= %d (3 servers fetch once each)",
			pt.PeerFetchBytes, int64(3)*modelBytes)
	}
}

// TestFleetBoundedStoreEviction: with StoreEvictEvery modeling a
// byte-capped session store, cap pressure evicts model blobs and forces
// re-resolution traffic — yet every inference still completes, and with
// more than one server the re-fetches ride the backhaul, not the client
// uplink.
func TestFleetBoundedStoreEviction(t *testing.T) {
	const clients, reqs = 32, 6
	cfg := FleetConfig{RequestsPerClient: reqs, RoamEvery: 2, StoreEvictEvery: 10}
	pt := fleetPoints(t, []int{4}, clients, []fleet.Policy{fleet.PolicyHash}, cfg)[0]
	if pt.Completed != clients*reqs {
		t.Errorf("completed = %d, want %d; eviction must not lose requests", pt.Completed, clients*reqs)
	}
	if pt.StoreEvictions == 0 {
		t.Fatal("no evictions with StoreEvictEvery=10 over 192 requests; the bounded store never bit")
	}
	if pt.EvictionRefetchBytes == 0 {
		t.Error("evictions happened but forced no re-fetch traffic")
	}
	sc, err := NewScenario("googlenet")
	if err != nil {
		t.Fatal(err)
	}
	modelBytes := sc.ModelUploadBytes()
	if pt.EvictionRefetchBytes%modelBytes != 0 {
		t.Errorf("refetch bytes %d not a multiple of the model size %d",
			pt.EvictionRefetchBytes, modelBytes)
	}
	// Four servers with staggered eviction counters never go blob-empty
	// simultaneously here, so the client pays the wireless upload once.
	if pt.ClientModelUploadBytes != modelBytes {
		t.Errorf("client uploads = %d bytes, want one model (%d); re-fetches should ride the backhaul",
			pt.ClientModelUploadBytes, modelBytes)
	}

	// The unbounded-store control: same fleet, no evictions, no refetches.
	cfg.StoreEvictEvery = 0
	base := fleetPoints(t, []int{4}, clients, []fleet.Policy{fleet.PolicyHash}, cfg)[0]
	if base.StoreEvictions != 0 || base.EvictionRefetchBytes != 0 {
		t.Errorf("unbounded control recorded evictions: %d / %d bytes",
			base.StoreEvictions, base.EvictionRefetchBytes)
	}
}

// TestFleetLoadPolicySpreadsByCapacity: on a heterogeneous fleet the
// load-weighted policy sends more sessions to bigger servers, while pure
// consistent hashing is capacity-blind. Compare how much work the
// 1-worker runts absorb under each policy.
func TestFleetLoadPolicySpreadsByCapacity(t *testing.T) {
	cfg := FleetConfig{RequestsPerClient: 4, Capacities: []int{4, 1}}
	runtShare := func(p fleet.Policy) float64 {
		pt := fleetPoints(t, []int{4}, 64, []fleet.Policy{p}, cfg)[0]
		runt, total := 0, 0
		for i, n := range pt.ExecPerServer {
			total += n
			if cfg.Capacities[i%len(cfg.Capacities)] == 1 {
				runt += n
			}
		}
		if total == 0 {
			t.Fatalf("%s: no executions", p)
		}
		return float64(runt) / float64(total)
	}
	hash, load := runtShare(fleet.PolicyHash), runtShare(fleet.PolicyLoadWeighted)
	if load >= hash {
		t.Errorf("1-worker servers absorbed %.2f of work under load policy, %.2f under hash; load-weighted placement should shift work to big servers",
			load, hash)
	}
}

// TestFleetSweepSLO scores the same run against a tight and a loose
// latency objective: the tight one must register bad events on the real
// burn-rate engine (driven by the simulated clock), the loose one must
// stay clean, and SLO scoring must not perturb the simulation itself.
func TestFleetSweepSLO(t *testing.T) {
	pols := []fleet.Policy{fleet.PolicyLoadWeighted}
	base := FleetConfig{RequestsPerClient: 4, RoamEvery: 2}

	tight := base
	tight.SLOObjective = time.Microsecond // every inference blows this
	pt := fleetPoints(t, []int{3}, 32, pols, tight)[0]
	if pt.SLOBad != uint64(pt.Completed) {
		t.Errorf("tight objective: SLOBad = %d, want every completion (%d)", pt.SLOBad, pt.Completed)
	}
	if pt.SLOBurns == 0 {
		t.Error("tight objective: expected at least one burn transition")
	}

	loose := base
	loose.SLOObjective = time.Hour
	pt = fleetPoints(t, []int{3}, 32, pols, loose)[0]
	if pt.SLOBad != 0 || pt.SLOBurns != 0 || pt.SLOLongBurn != 0 {
		t.Errorf("loose objective: SLO fields = %d/%d/%v, want all zero",
			pt.SLOBad, pt.SLOBurns, pt.SLOLongBurn)
	}

	// SLO scoring is observation only: the run's latency outcomes are
	// byte-identical with and without it.
	unscored := fleetPoints(t, []int{3}, 32, pols, base)[0]
	scored := pt
	scored.SLOBad, scored.SLOBurns, scored.SLOLongBurn = 0, 0, 0
	if !reflect.DeepEqual(scored, unscored) {
		t.Errorf("SLO scoring perturbed the simulation:\n%+v\nvs\n%+v", scored, unscored)
	}

	if _, err := FleetSweep("googlenet", []int{2}, 8, pols, FleetConfig{SLOGoal: 2}); err == nil {
		t.Error("out-of-range SLOGoal should fail")
	}
	if _, err := FleetSweep("googlenet", []int{2}, 8, pols, FleetConfig{SLOGoal: 0.9}); err == nil {
		t.Error("SLOGoal without SLOObjective should fail")
	}
}

package sim

import (
	"testing"
	"time"

	"websnap/internal/obs"
)

func loadPoints(t *testing.T, batch int, clients []int) []LoadPoint {
	t.Helper()
	pts, err := LoadSweep("googlenet", clients, LoadConfig{MaxBatch: batch})
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

func TestLoadSweepValidation(t *testing.T) {
	if _, err := LoadSweep("googlenet", nil, LoadConfig{}); err == nil {
		t.Error("empty client list should fail")
	}
	if _, err := LoadSweep("googlenet", []int{0}, LoadConfig{}); err == nil {
		t.Error("zero clients should fail")
	}
	if _, err := LoadSweep("no-such-model", []int{1}, LoadConfig{}); err == nil {
		t.Error("unknown model should fail")
	}
	if _, err := LoadSweep("googlenet", []int{1}, LoadConfig{SplitLabel: "nope"}); err == nil {
		t.Error("unknown split label should fail")
	}
}

func TestLoadSweepDeterministic(t *testing.T) {
	a := loadPoints(t, 8, []int{8})
	b := loadPoints(t, 8, []int{8})
	// LoadPoint holds a slice (Stages), so compare piecewise.
	sa, sb := a[0], b[0]
	if sa.Clients != sb.Clients || sa.Completed != sb.Completed ||
		sa.Fallbacks != sb.Fallbacks || sa.Throughput != sb.Throughput ||
		sa.OffloadedThroughput != sb.OffloadedThroughput ||
		sa.P50 != sb.P50 || sa.P99 != sb.P99 {
		t.Errorf("simulation not deterministic: %+v vs %+v", sa, sb)
	}
	if len(sa.Stages) != len(sb.Stages) {
		t.Fatalf("stage summaries differ in length: %d vs %d", len(sa.Stages), len(sb.Stages))
	}
	for i := range sa.Stages {
		if sa.Stages[i] != sb.Stages[i] {
			t.Errorf("stage %s not deterministic: %+v vs %+v",
				sa.Stages[i].Stage, sa.Stages[i], sb.Stages[i])
		}
	}
}

func TestLoadAllRequestsComplete(t *testing.T) {
	cfg := LoadConfig{MaxBatch: 4, RequestsPerClient: 5}
	pts, err := LoadSweep("googlenet", []int{16}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pts[0].Completed, 16*5; got != want {
		t.Errorf("completed = %d, want %d (no inference may be lost)", got, want)
	}
}

// TestLoadBatchingImprovesThroughput checks the headline scheduler claim:
// with >= 8 concurrent partial-offload clients of one model, coalescing
// rear passes into batches yields more server-executed inferences per
// second than serving each session alone.
func TestLoadBatchingImprovesThroughput(t *testing.T) {
	clients := []int{8, 16, 32, 64}
	batched := loadPoints(t, 8, clients)
	solo := loadPoints(t, 1, clients)
	for i, n := range clients {
		if batched[i].OffloadedThroughput <= solo[i].OffloadedThroughput {
			t.Errorf("clients=%d: batched offloaded throughput %.3f <= solo %.3f",
				n, batched[i].OffloadedThroughput, solo[i].OffloadedThroughput)
		}
	}
	// The win must be substantial once the pool is saturated, not a
	// rounding artifact.
	if batched[1].OffloadedThroughput < 1.2*solo[1].OffloadedThroughput {
		t.Errorf("clients=16: batched %.3f < 1.2x solo %.3f",
			batched[1].OffloadedThroughput, solo[1].OffloadedThroughput)
	}
}

// TestLoadTailLatencyMonotone checks that p99 latency does not decrease as
// concurrency grows — queueing can only get worse with more load.
func TestLoadTailLatencyMonotone(t *testing.T) {
	clients := []int{1, 2, 4, 8, 16, 32, 64}
	for _, batch := range []int{1, 8} {
		pts := loadPoints(t, batch, clients)
		for i := 1; i < len(pts); i++ {
			if pts[i].P99 < pts[i-1].P99 {
				t.Errorf("batch=%d: p99 fell from %v (n=%d) to %v (n=%d)",
					batch, pts[i-1].P99, pts[i-1].Clients, pts[i].P99, pts[i].Clients)
			}
		}
		if pts[len(pts)-1].P99 <= pts[0].P99 {
			t.Errorf("batch=%d: p99 never grew (%v at n=1, %v at n=64)",
				batch, pts[0].P99, pts[len(pts)-1].P99)
		}
	}
}

// TestLoadFallbackUnderOverload checks the admission-control story: with
// the queue saturated, rejected inferences complete locally rather than
// being lost, and lightly loaded sweeps see no fallback at all.
func TestLoadFallbackUnderOverload(t *testing.T) {
	pts := loadPoints(t, 8, []int{1, 64})
	if pts[0].Fallbacks != 0 {
		t.Errorf("single client saw %d fallbacks", pts[0].Fallbacks)
	}
	if pts[1].Fallbacks == 0 {
		t.Error("64 clients against a 2-worker server should overflow the queue")
	}
	if rate := pts[1].FallbackRate(); rate <= 0 || rate >= 1 {
		t.Errorf("fallback rate = %v, want within (0, 1)", rate)
	}
}

// TestLoadDecisionMixAndPredictionError checks the audit view of the sweep:
// the decision mix accounts for every completed inference, prediction-error
// samples cover exactly the offloaded ones, and the cost model's unloaded
// prediction is accurate at a single client but increasingly optimistic
// (positive signed error: slower than predicted) as the server saturates.
func TestLoadDecisionMixAndPredictionError(t *testing.T) {
	pts := loadPoints(t, 8, []int{1, 64})
	for _, pt := range pts {
		var mixTotal int64
		mix := map[obs.DecisionPath]int64{}
		for _, pc := range pt.Mix {
			mix[pc.Path] = pc.Count
			mixTotal += pc.Count
		}
		if mixTotal != int64(pt.Completed) {
			t.Errorf("clients=%d: mix sums to %d, want %d", pt.Clients, mixTotal, pt.Completed)
		}
		if got := mix[obs.PathFallback]; got != int64(pt.Fallbacks) {
			t.Errorf("clients=%d: mix fallbacks = %d, want %d", pt.Clients, got, pt.Fallbacks)
		}
		if got := mix[obs.PathPartial]; got != int64(pt.Completed-pt.Fallbacks) {
			t.Errorf("clients=%d: mix partial = %d, want %d", pt.Clients, got, pt.Completed-pt.Fallbacks)
		}
		if pt.PredErr.Count != pt.Completed-pt.Fallbacks {
			t.Errorf("clients=%d: prediction samples = %d, want %d (offloaded only)",
				pt.Clients, pt.PredErr.Count, pt.Completed-pt.Fallbacks)
		}
	}
	// Unloaded: one client, one request in flight, batch of one — the
	// prediction differs from the simulation only by think-time-free
	// dispatch, so the relative error stays small.
	if e := pts[0].PredErr.AbsP50; e > 0.05 {
		t.Errorf("unloaded |relative error| p50 = %v, want <= 0.05", e)
	}
	// Saturated: queueing delay the unloaded prediction cannot see pushes
	// the signed error well positive.
	if pts[1].PredErr.P50 <= pts[0].PredErr.P50 {
		t.Errorf("saturated signed error p50 %v should exceed unloaded %v",
			pts[1].PredErr.P50, pts[0].PredErr.P50)
	}
	if pts[1].PredErr.P95 < pts[1].PredErr.P50 {
		t.Errorf("quantiles out of order: p95 %v < p50 %v",
			pts[1].PredErr.P95, pts[1].PredErr.P50)
	}
}

func TestPercentile(t *testing.T) {
	lat := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(lat, 0.50); got != 5 {
		t.Errorf("p50 = %v, want 5", got)
	}
	if got := percentile(lat, 0.99); got != 10 {
		t.Errorf("p99 = %v, want 10", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

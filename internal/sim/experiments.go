package sim

import (
	"fmt"
	"time"

	"websnap/internal/costmodel"
	"websnap/internal/models"
	"websnap/internal/nn"
	"websnap/internal/partition"
	"websnap/internal/vmsynth"
)

// Phase names one segment of the offloaded inference timeline, following
// the paper's Fig 7 legend ('C' = client, 'S' = server).
type Phase string

// Phases in timeline order.
const (
	PhaseModelUpload      Phase = "Model Upload"
	PhaseClientExec       Phase = "DNN Execution (C)"
	PhaseSnapshotCaptureC Phase = "Snapshot Capture (C)"
	PhaseTransferUp       Phase = "Snapshot Transmission (C→S)"
	PhaseSnapshotRestoreS Phase = "Snapshot Restoration (S)"
	PhaseServerExec       Phase = "DNN Execution (S)"
	PhaseSnapshotCaptureS Phase = "Snapshot Capture (S)"
	PhaseTransferDown     Phase = "Snapshot Transmission (S→C)"
	PhaseSnapshotRestoreC Phase = "Snapshot Restoration (C)"
)

// AllPhases lists every phase in timeline order.
func AllPhases() []Phase {
	return []Phase{
		PhaseModelUpload, PhaseClientExec, PhaseSnapshotCaptureC, PhaseTransferUp,
		PhaseSnapshotRestoreS, PhaseServerExec, PhaseSnapshotCaptureS,
		PhaseTransferDown, PhaseSnapshotRestoreC,
	}
}

// PhaseTime is one timed segment.
type PhaseTime struct {
	Phase    Phase
	Duration time.Duration
}

// Breakdown is the full timeline of one configuration — a Fig 7 bar.
type Breakdown struct {
	Model  string
	Config string
	Phases []PhaseTime
}

// Total returns the end-to-end time — a Fig 6 bar.
func (b Breakdown) Total() time.Duration {
	var total time.Duration
	for _, p := range b.Phases {
		total += p.Duration
	}
	return total
}

// Get returns the duration of one phase (zero if absent).
func (b Breakdown) Get(phase Phase) time.Duration {
	for _, p := range b.Phases {
		if p.Phase == phase {
			return p.Duration
		}
	}
	return 0
}

func (b *Breakdown) add(phase Phase, d time.Duration) {
	b.Phases = append(b.Phases, PhaseTime{Phase: phase, Duration: d})
}

// Configuration names, matching Fig 6's legend.
const (
	ConfigClient     = "Client"
	ConfigServer     = "Server"
	ConfigBeforeACK  = "Offloading (before ACK)"
	ConfigAfterACK   = "Offloading (after ACK)"
	ConfigPartial    = "Offloading (partial inference)"
	PartialPointUsed = "1st_pool" // Fig 6's partial bar uses the 1st_pool point (§IV.B)
)

// ClientOnly simulates running the app entirely at the client.
func (sc *Scenario) ClientOnly() (Breakdown, error) {
	t, err := sc.Client.NetworkTime(sc.Net)
	if err != nil {
		return Breakdown{}, err
	}
	b := Breakdown{Model: sc.ModelName, Config: ConfigClient}
	b.add(PhaseClientExec, t)
	return b, nil
}

// ServerOnly simulates running the app entirely at the server (the paper's
// Server configuration: no migration at all).
func (sc *Scenario) ServerOnly() (Breakdown, error) {
	t, err := sc.Server.NetworkTime(sc.Net)
	if err != nil {
		return Breakdown{}, err
	}
	b := Breakdown{Model: sc.ModelName, Config: ConfigServer}
	b.add(PhaseServerExec, t)
	return b, nil
}

// offloadCycle assembles the snapshot round trip common to all offloading
// configurations: capture at the client, ship, restore at the server, run
// the given server portion, capture the result, ship back, restore.
func (sc *Scenario) offloadCycle(b *Breakdown, upFeatureBytes int64, serverExec time.Duration) {
	upBytes := sc.StateBytes + upFeatureBytes
	downBytes := sc.StateBytes + sc.ResultTextBytes
	b.add(PhaseSnapshotCaptureC, sc.Client.SnapshotTime(upBytes))
	b.add(PhaseTransferUp, sc.Network.TransferTime(upBytes))
	b.add(PhaseSnapshotRestoreS, sc.Server.SnapshotTime(upBytes))
	b.add(PhaseServerExec, serverExec)
	b.add(PhaseSnapshotCaptureS, sc.Server.SnapshotTime(downBytes))
	b.add(PhaseTransferDown, sc.Network.TransferTime(downBytes))
	b.add(PhaseSnapshotRestoreC, sc.Client.SnapshotTime(downBytes))
}

// OffloadAfterACK simulates offloading once the model pre-send has been
// acknowledged: the snapshot carries the input image text and no model.
func (sc *Scenario) OffloadAfterACK() (Breakdown, error) {
	serverExec, err := sc.Server.NetworkTime(sc.Net)
	if err != nil {
		return Breakdown{}, err
	}
	b := Breakdown{Model: sc.ModelName, Config: ConfigAfterACK}
	sc.offloadCycle(&b, sc.InputTextBytes, serverExec)
	return b, nil
}

// OffloadBeforeACK simulates offloading before the ACK arrives: the client
// must first upload the model files, then proceed as usual (§III.B.1).
func (sc *Scenario) OffloadBeforeACK() (Breakdown, error) {
	serverExec, err := sc.Server.NetworkTime(sc.Net)
	if err != nil {
		return Breakdown{}, err
	}
	b := Breakdown{Model: sc.ModelName, Config: ConfigBeforeACK}
	b.add(PhaseModelUpload, sc.Network.TransferTime(sc.ModelUploadBytes()))
	sc.offloadCycle(&b, sc.InputTextBytes, serverExec)
	return b, nil
}

// OffloadPartial simulates partial inference split at the named Fig 8
// point: the front runs at the client, the snapshot carries feature data
// instead of the image, and the server runs the rear.
func (sc *Scenario) OffloadPartial(label string) (Breakdown, error) {
	infos, err := sc.Net.Describe()
	if err != nil {
		return Breakdown{}, err
	}
	points, err := sc.Net.PartitionPoints()
	if err != nil {
		return Breakdown{}, err
	}
	var pt *nn.PartitionPoint
	for i := range points {
		if points[i].Label == label {
			pt = &points[i]
			break
		}
	}
	if pt == nil {
		return Breakdown{}, fmt.Errorf("sim: %s has no partition point %q", sc.ModelName, label)
	}
	clientExec, err := sc.Client.RangeTime(infos, 0, pt.Index+1)
	if err != nil {
		return Breakdown{}, err
	}
	serverExec, err := sc.Server.RangeTime(infos, pt.Index+1, len(infos))
	if err != nil {
		return Breakdown{}, err
	}
	b := Breakdown{Model: sc.ModelName, Config: ConfigPartial}
	b.add(PhaseClientExec, clientExec)
	sc.offloadCycle(&b, sc.textBytes(int(pt.FeatureBytes/4)), serverExec)
	return b, nil
}

// Fig6Row is one group of bars in Fig 6: the inference time of one app
// under all five configurations.
type Fig6Row struct {
	Model     string
	Client    time.Duration
	Server    time.Duration
	BeforeACK time.Duration
	AfterACK  time.Duration
	Partial   time.Duration
}

// Fig6 regenerates Fig 6 for all three benchmark apps.
func Fig6() ([]Fig6Row, error) {
	rows := make([]Fig6Row, 0, len(models.Names()))
	for _, name := range models.Names() {
		sc, err := NewScenario(name)
		if err != nil {
			return nil, err
		}
		row, err := sc.Fig6Row()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6Row computes one app's Fig 6 bars.
func (sc *Scenario) Fig6Row() (Fig6Row, error) {
	clientB, err := sc.ClientOnly()
	if err != nil {
		return Fig6Row{}, err
	}
	serverB, err := sc.ServerOnly()
	if err != nil {
		return Fig6Row{}, err
	}
	before, err := sc.OffloadBeforeACK()
	if err != nil {
		return Fig6Row{}, err
	}
	after, err := sc.OffloadAfterACK()
	if err != nil {
		return Fig6Row{}, err
	}
	partial, err := sc.OffloadPartial(PartialPointUsed)
	if err != nil {
		return Fig6Row{}, err
	}
	return Fig6Row{
		Model:     sc.ModelName,
		Client:    clientB.Total(),
		Server:    serverB.Total(),
		BeforeACK: before.Total(),
		AfterACK:  after.Total(),
		Partial:   partial.Total(),
	}, nil
}

// Fig6GPU projects Fig 6 onto the GPU-accelerated edge server the paper
// anticipates in §IV.A (webGL, ~80x DNN speedup): the same apps and
// network, with only the server device swapped.
func Fig6GPU() ([]Fig6Row, error) {
	rows := make([]Fig6Row, 0, len(models.Names()))
	for _, name := range models.Names() {
		sc, err := NewScenario(name)
		if err != nil {
			return nil, err
		}
		sc.Server = costmodel.ServerX86GPU
		row, err := sc.Fig6Row()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig7 regenerates Fig 7: the phase breakdown of the inference time for
// the offloading configurations of every benchmark app.
func Fig7() ([]Breakdown, error) {
	var out []Breakdown
	for _, name := range models.Names() {
		sc, err := NewScenario(name)
		if err != nil {
			return nil, err
		}
		before, err := sc.OffloadBeforeACK()
		if err != nil {
			return nil, err
		}
		after, err := sc.OffloadAfterACK()
		if err != nil {
			return nil, err
		}
		partial, err := sc.OffloadPartial(PartialPointUsed)
		if err != nil {
			return nil, err
		}
		out = append(out, before, after, partial)
	}
	return out, nil
}

// Fig8Row is one model's partial-inference sweep: inference time at every
// offloading point.
type Fig8Row struct {
	Model      string
	Candidates []partition.Candidate
}

// Fig8 regenerates Fig 8 by sweeping every candidate offloading point of
// every benchmark model through the partition estimator.
func Fig8() ([]Fig8Row, error) {
	rows := make([]Fig8Row, 0, len(models.Names()))
	for _, name := range models.Names() {
		sc, err := NewScenario(name)
		if err != nil {
			return nil, err
		}
		plan, err := partition.Analyze(sc.Net, sc.PartitionConfig())
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{Model: name, Candidates: plan.Candidates})
	}
	return rows, nil
}

// QuantShiftRow records where the optimal (denatured) partition point of
// one model lands at one quality tier — the quantized-split experiment.
// Precision reduction feeds back into *where* the split belongs, not just
// how fast each side runs (the DynO observation): the client's
// Int8Speedup (3×) exceeds the server's (2×), so every candidate's
// client/server balance shifts, and the planner must re-solve the table
// per tier rather than scale one answer. In the paper's Odroid + 30 Mbps
// scenario the re-solved optimum keeps the 1st_pool cut — client compute
// still dominates later candidates even at 3× — while end-to-end latency
// roughly halves; the cut itself starts moving toward the back of the
// network once the client stops being compute-bound (faster clients or
// slower links). See EXPERIMENTS.md.
type QuantShiftRow struct {
	Model      string
	Precision  nn.Precision
	BestLabel  string
	SplitIndex int
	ClientTime time.Duration
	ServerTime time.Duration
	Total      time.Duration
}

// QuantShift evaluates every benchmark model's optimal denatured split at
// both quality tiers, pairing rows per model (float32 first, int8 second).
func QuantShift() ([]QuantShiftRow, error) {
	rows := make([]QuantShiftRow, 0, 2*len(models.Names()))
	for _, name := range models.Names() {
		sc, err := NewScenario(name)
		if err != nil {
			return nil, err
		}
		for _, prec := range []nn.Precision{nn.PrecFloat32, nn.PrecInt8} {
			sc.Precision = prec
			plan, err := partition.Analyze(sc.Net, sc.PartitionConfig())
			if err != nil {
				return nil, err
			}
			best, err := plan.Choose(true)
			if err != nil {
				return nil, err
			}
			rows = append(rows, QuantShiftRow{
				Model:      name,
				Precision:  prec,
				BestLabel:  best.Point.Label,
				SplitIndex: best.Point.Index,
				ClientTime: best.ClientTime,
				ServerTime: best.ServerTime,
				Total:      best.Total,
			})
		}
	}
	return rows, nil
}

// Table1Row is one column of Table 1.
type Table1Row struct {
	Model string
	// VM synthesis (on-demand installation).
	SynthesisTime time.Duration
	OverlayBytes  int64
	// Snapshot-based offloading with pre-sending.
	MigrationWithPre   time.Duration
	SansFeatureWithPre int64
	// Snapshot-based offloading without pre-sending.
	MigrationWithoutPre   time.Duration
	SansFeatureWithoutPre int64
}

// Table1 regenerates Table 1: the overhead of VM-based installation versus
// snapshot migration with and without model pre-sending.
func Table1() ([]Table1Row, error) {
	syn := vmsynth.NewSynthesizer(vmsynth.BaseImage{Name: "ubuntu-12.04", Bytes: 8 << 30})
	rows := make([]Table1Row, 0, len(models.Names()))
	for _, name := range models.Names() {
		sc, err := NewScenario(name)
		if err != nil {
			return nil, err
		}
		overlay, err := vmsynth.BuildOverlay(vmsynth.StandardComponents(sc.Net.ModelBytes())...)
		if err != nil {
			return nil, err
		}
		row := Table1Row{
			Model:        name,
			OverlayBytes: overlay.CompressedBytes,
			SynthesisTime: sc.Network.TransferTime(overlay.CompressedBytes) +
				syn.EstimateApply(overlay.CompressedBytes),
		}
		// Migration = save + transmit + restore of the snapshot "just
		// before executing the offloaded event handler" (§IV.C).
		upBytes := sc.StateBytes + sc.InputTextBytes
		migrate := sc.Client.SnapshotTime(upBytes) +
			sc.Network.TransferTime(upBytes) +
			sc.Server.SnapshotTime(upBytes)
		row.MigrationWithPre = migrate
		row.SansFeatureWithPre = sc.StateBytes
		row.MigrationWithoutPre = sc.Network.TransferTime(sc.ModelUploadBytes()) + migrate
		row.SansFeatureWithoutPre = sc.StateBytes + sc.ModelUploadBytes()
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig1Row describes one stage of GoogLeNet for the Fig 1 architecture
// table: the layer and its output feature dimensions.
type Fig1Row struct {
	Layer       string
	Type        nn.LayerType
	OutputShape []int
	FeatureKB   int64
}

// Fig1 regenerates the Fig 1 architecture walk-through: GoogLeNet's
// per-layer feature dimensions from the 224×224×3 input to the 1000-way
// output.
func Fig1() ([]Fig1Row, error) {
	net, err := models.Build(models.GoogLeNet)
	if err != nil {
		return nil, err
	}
	infos, err := net.Describe()
	if err != nil {
		return nil, err
	}
	rows := make([]Fig1Row, 0, len(infos))
	for _, li := range infos {
		rows = append(rows, Fig1Row{
			Layer:       li.Name,
			Type:        li.Type,
			OutputShape: li.OutputShape,
			FeatureKB:   li.OutputBytes >> 10,
		})
	}
	return rows, nil
}

// FeatureSizeRow reports the textual feature size at one offloading point —
// the §IV.B measurement behind the 14.7 MB vs 2.9 MB observation.
type FeatureSizeRow struct {
	Model     string
	Label     string
	TextBytes int64
}

// FeatureSizes regenerates the §IV.B feature-size measurements for every
// benchmark model and offloading point.
func FeatureSizes() ([]FeatureSizeRow, error) {
	var out []FeatureSizeRow
	for _, name := range models.Names() {
		sc, err := NewScenario(name)
		if err != nil {
			return nil, err
		}
		points, err := sc.Net.PartitionPoints()
		if err != nil {
			return nil, err
		}
		for _, p := range points {
			out = append(out, FeatureSizeRow{
				Model:     name,
				Label:     p.Label,
				TextBytes: sc.textBytes(int(p.FeatureBytes / 4)),
			})
		}
	}
	return out, nil
}

package sim

import (
	"testing"
	"time"

	"websnap/internal/models"
	"websnap/internal/webapp"
)

func scenario(t *testing.T, name string) *Scenario {
	t.Helper()
	sc, err := NewScenario(name)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestScenarioMeasurements(t *testing.T) {
	sc := scenario(t, models.GoogLeNet)
	if sc.StateBytes <= 0 || sc.InputTextBytes <= 0 || sc.ResultTextBytes <= 0 || sc.SpecBytes <= 0 {
		t.Fatalf("unmeasured scenario: %+v", sc)
	}
	// Table 1 scale: state (code + DOM + labels, no features/weights)
	// must be well under a megabyte.
	if sc.StateBytes > 1<<20 {
		t.Errorf("state bytes = %d, want < 1 MB", sc.StateBytes)
	}
	// The input image text must dominate the result scores text.
	if sc.InputTextBytes <= sc.ResultTextBytes {
		t.Error("input text should exceed result text")
	}
	// Model upload is descriptor + 4 B/param.
	if sc.ModelUploadBytes() <= sc.Net.ModelBytes() {
		t.Error("upload bytes should include the descriptor")
	}
}

func TestTextBytesMatchesRealEncoder(t *testing.T) {
	sc := scenario(t, models.AgeNet)
	arr := make(webapp.Float32Array, 10000)
	s := uint64(7)
	for i := range arr {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		arr[i] = float32(s%100000)/10000 - 1
	}
	real, err := measureEncodedArray(arr)
	if err != nil {
		t.Fatal(err)
	}
	est := sc.textBytes(len(arr))
	ratio := float64(est) / float64(real)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("textBytes estimate %d vs real encoding %d (ratio %.2f), want within 25%%", est, real, ratio)
	}
}

// TestFig6Shape pins every qualitative claim the paper makes about Fig 6.
func TestFig6Shape(t *testing.T) {
	rows, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		t.Run(r.Model, func(t *testing.T) {
			// "the server execution time is much shorter than the
			// client execution time"
			if r.Server*3 > r.Client {
				t.Errorf("server %v should be several times faster than client %v", r.Server, r.Client)
			}
			// "offloading after ACK shows an execution time similar
			// to that of server's": within 1 second.
			if d := r.AfterACK - r.Server; d < 0 || d > time.Second {
				t.Errorf("afterACK %v should be within 1s above server %v", r.AfterACK, r.Server)
			}
			// "the offloading performance rapidly increases after
			// the DNN model uploading is over"
			if r.AfterACK >= r.BeforeACK {
				t.Errorf("afterACK %v should beat beforeACK %v", r.AfterACK, r.BeforeACK)
			}
			// "partial inference is slower than full server-side
			// inference ... the cost to lessen the privacy concern"
			if r.Partial <= r.AfterACK {
				t.Errorf("partial %v should cost more than afterACK %v", r.Partial, r.AfterACK)
			}
			// Partial still beats pure client execution by a lot.
			if r.Partial*2 > r.Client {
				t.Errorf("partial %v should be well under client %v", r.Partial, r.Client)
			}
		})
	}
	byModel := map[string]Fig6Row{}
	for _, r := range rows {
		byModel[r.Model] = r
	}
	// "for AgeNet and GenderNet, offloading before ACK is even slower
	// than the local client execution due to their large model size"
	for _, m := range []string{models.AgeNet, models.GenderNet} {
		if r := byModel[m]; r.BeforeACK <= r.Client {
			t.Errorf("%s: beforeACK %v should exceed client %v", m, r.BeforeACK, r.Client)
		}
	}
	// ... but not for GoogLeNet (its model is smaller and its client
	// execution much longer).
	if r := byModel[models.GoogLeNet]; r.BeforeACK >= r.Client {
		t.Errorf("googlenet: beforeACK %v should beat client %v", r.BeforeACK, r.Client)
	}
}

// TestFig6GPUProjection: with the §IV.A GPU server (~80x), server execution
// collapses and the after-ACK offload becomes transfer-dominated — the
// "sharply reduced in the near future" remark, quantified.
func TestFig6GPUProjection(t *testing.T) {
	cpu, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := Fig6GPU()
	if err != nil {
		t.Fatal(err)
	}
	for i := range gpu {
		if gpu[i].Model != cpu[i].Model {
			t.Fatalf("row order mismatch")
		}
		// Server execution should collapse by well over an order of
		// magnitude.
		if gpu[i].Server*20 > cpu[i].Server {
			t.Errorf("%s: GPU server %v not ≪ CPU server %v", gpu[i].Model, gpu[i].Server, cpu[i].Server)
		}
		// After-ACK offloading should now take about the transfer time:
		// well under a second for every model.
		if gpu[i].AfterACK > time.Second {
			t.Errorf("%s: GPU afterACK = %v, want sub-second", gpu[i].Model, gpu[i].AfterACK)
		}
		// Client execution is unchanged.
		if gpu[i].Client != cpu[i].Client {
			t.Errorf("%s: client time must not depend on the server device", gpu[i].Model)
		}
	}
}

// TestFig7Shape pins the paper's breakdown observations: snapshot overheads
// are negligible next to DNN execution, and server execution dominates.
func TestFig7Shape(t *testing.T) {
	bds, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(bds) != 9 { // 3 configs x 3 models
		t.Fatalf("got %d breakdowns, want 9", len(bds))
	}
	for _, b := range bds {
		snapshotOverhead := b.Get(PhaseSnapshotCaptureC) + b.Get(PhaseSnapshotRestoreS) +
			b.Get(PhaseSnapshotCaptureS) + b.Get(PhaseSnapshotRestoreC)
		exec := b.Get(PhaseServerExec) + b.Get(PhaseClientExec)
		if snapshotOverhead*5 > exec {
			t.Errorf("%s/%s: snapshot overhead %v not negligible vs execution %v",
				b.Model, b.Config, snapshotOverhead, exec)
		}
		if b.Config == ConfigAfterACK {
			// "The most dominant part of the inference time is the
			// server execution time".
			if b.Get(PhaseServerExec)*2 < b.Total() {
				t.Errorf("%s: server exec %v should dominate total %v",
					b.Model, b.Get(PhaseServerExec), b.Total())
			}
		}
		if b.Config == ConfigBeforeACK && b.Get(PhaseModelUpload) == 0 {
			t.Errorf("%s: beforeACK must include model upload", b.Model)
		}
		if b.Config == ConfigAfterACK && b.Get(PhaseModelUpload) != 0 {
			t.Errorf("%s: afterACK must not include model upload", b.Model)
		}
		if b.Config == ConfigPartial && b.Get(PhaseClientExec) == 0 {
			t.Errorf("%s: partial must include client execution", b.Model)
		}
	}
}

// TestFig8Shape: the sweep exists for every model, times dip from conv to
// pool, and 1st_pool minimizes among privacy-preserving points.
func TestFig8Shape(t *testing.T) {
	rows, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if len(r.Candidates) < 4 {
			t.Errorf("%s: only %d candidates", r.Model, len(r.Candidates))
		}
		var bestLabel string
		var best time.Duration
		for _, c := range r.Candidates {
			if c.Point.Index == 0 {
				continue
			}
			if bestLabel == "" || c.Total < best {
				bestLabel, best = c.Point.Label, c.Total
			}
		}
		if bestLabel != "1st_pool" {
			t.Errorf("%s: best privacy point = %s, want 1st_pool", r.Model, bestLabel)
		}
	}
}

// TestTable1Shape pins Table 1's relationships and rough magnitudes.
func TestTable1Shape(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	paper := map[string]struct {
		synthesisSecs float64
		overlayMB     float64
		migNoPreSecs  float64
	}{
		models.GoogLeNet: {19.31, 65, 7.79},
		models.AgeNet:    {24.29, 82, 12.07},
		models.GenderNet: {24.31, 82, 12.07},
	}
	for _, r := range rows {
		t.Run(r.Model, func(t *testing.T) {
			p := paper[r.Model]
			// Magnitudes within 15% of the paper.
			if s := r.SynthesisTime.Seconds(); s < p.synthesisSecs*0.85 || s > p.synthesisSecs*1.15 {
				t.Errorf("synthesis %.2fs, paper %.2fs", s, p.synthesisSecs)
			}
			if mb := float64(r.OverlayBytes) / (1 << 20); mb < p.overlayMB*0.9 || mb > p.overlayMB*1.1 {
				t.Errorf("overlay %.1f MB, paper %.0f MB", mb, p.overlayMB)
			}
			if s := r.MigrationWithoutPre.Seconds(); s < p.migNoPreSecs*0.85 || s > p.migNoPreSecs*1.15 {
				t.Errorf("migration w/o pre-send %.2fs, paper %.2fs", s, p.migNoPreSecs)
			}
			// Orderings: snapshot migration with pre-sending is
			// sub-second, "much smaller than the VM synthesis".
			if r.MigrationWithPre >= time.Second {
				t.Errorf("migration with pre-send %v, want < 1s", r.MigrationWithPre)
			}
			if r.MigrationWithoutPre >= r.SynthesisTime {
				t.Error("first offload without pre-send should still beat VM synthesis")
			}
			if r.SansFeatureWithPre >= r.SansFeatureWithoutPre {
				t.Error("pre-sending should shrink the model-free snapshot size")
			}
		})
	}
}

func TestFig1Dimensions(t *testing.T) {
	rows, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	byLayer := map[string][]int{}
	for _, r := range rows {
		byLayer[r.Layer] = r.OutputShape
	}
	pool1 := byLayer["pool1"]
	if len(pool1) != 3 || pool1[0] != 64 || pool1[1] != 56 || pool1[2] != 56 {
		t.Errorf("pool1 = %v, Fig 1 says 56x56x64", pool1)
	}
	out := byLayer["prob"]
	if len(out) != 1 || out[0] != 1000 {
		t.Errorf("prob = %v, want [1000]", out)
	}
}

// TestFeatureSizes pins the §IV.B measurement: GoogLeNet's feature text
// surges at 1st_conv and shrinks at 1st_pool (paper: 14.7 MB vs 2.9 MB,
// a ~5x drop; our textual encoding is denser but the ratio holds).
func TestFeatureSizes(t *testing.T) {
	rows, err := FeatureSizes()
	if err != nil {
		t.Fatal(err)
	}
	get := func(model, label string) int64 {
		for _, r := range rows {
			if r.Model == model && r.Label == label {
				return r.TextBytes
			}
		}
		t.Fatalf("missing %s/%s", model, label)
		return 0
	}
	conv1 := get(models.GoogLeNet, "1st_conv")
	pool1 := get(models.GoogLeNet, "1st_pool")
	ratio := float64(conv1) / float64(pool1)
	if ratio < 3.5 || ratio > 5.5 {
		t.Errorf("conv1/pool1 text ratio = %.2f, paper reports ~5 (14.7/2.9)", ratio)
	}
	if conv1 < 4<<20 {
		t.Errorf("1st_conv feature text = %d bytes, want multi-MB like the paper", conv1)
	}
	// "other models also show a similar size behavior"
	for _, m := range []string{models.AgeNet, models.GenderNet} {
		if get(m, "1st_conv") <= get(m, "1st_pool") {
			t.Errorf("%s: conv should exceed pool", m)
		}
	}
}

func TestOffloadPartialUnknownLabel(t *testing.T) {
	sc := scenario(t, models.GenderNet)
	if _, err := sc.OffloadPartial("99th_pool"); err == nil {
		t.Error("unknown label should fail")
	}
}

func TestBreakdownHelpers(t *testing.T) {
	b := Breakdown{}
	b.add(PhaseServerExec, time.Second)
	b.add(PhaseTransferUp, 2*time.Second)
	if b.Total() != 3*time.Second {
		t.Errorf("Total = %v", b.Total())
	}
	if b.Get(PhaseServerExec) != time.Second {
		t.Errorf("Get = %v", b.Get(PhaseServerExec))
	}
	if b.Get(PhaseModelUpload) != 0 {
		t.Error("absent phase should be zero")
	}
	if len(AllPhases()) != 9 {
		t.Errorf("AllPhases = %d, want 9", len(AllPhases()))
	}
}

package sim

import (
	"testing"

	"websnap/internal/models"
)

func TestBandwidthSweepShape(t *testing.T) {
	mbps := []float64{1, 5, 30, 100, 1000}
	pts, err := BandwidthSweep(models.GoogLeNet, mbps)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(mbps) {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		// More bandwidth never hurts any offloading configuration.
		if pts[i].AfterACK > pts[i-1].AfterACK {
			t.Errorf("afterACK rose from %v to %v at %.0f Mbps",
				pts[i-1].AfterACK, pts[i].AfterACK, pts[i].BandwidthMbps)
		}
		if pts[i].BeforeACK > pts[i-1].BeforeACK {
			t.Errorf("beforeACK rose at %.0f Mbps", pts[i].BandwidthMbps)
		}
		if pts[i].BestTotal > pts[i-1].BestTotal {
			t.Errorf("best partition total rose at %.0f Mbps", pts[i].BandwidthMbps)
		}
		// ClientOnly is bandwidth-invariant.
		if pts[i].ClientOnly != pts[0].ClientOnly {
			t.Error("client-only time must not depend on bandwidth")
		}
	}
	// At very low bandwidth, offloading before ACK loses to the client.
	if pts[0].BeforeACK < pts[0].ClientOnly {
		t.Errorf("at 1 Mbps, beforeACK %v should exceed client %v",
			pts[0].BeforeACK, pts[0].ClientOnly)
	}
	// At very high bandwidth, the privacy-constrained choice remains a
	// real layer (never Input).
	for _, p := range pts {
		if p.BestLabel == "Input" || p.BestLabel == "" {
			t.Errorf("at %.0f Mbps best = %q, must be a real layer", p.BandwidthMbps, p.BestLabel)
		}
		if p.FullOffload > p.BestTotal {
			t.Errorf("at %.0f Mbps unconstrained %v should not exceed constrained %v",
				p.BandwidthMbps, p.FullOffload, p.BestTotal)
		}
	}
}

func TestBandwidthSweepValidation(t *testing.T) {
	if _, err := BandwidthSweep(models.AgeNet, nil); err == nil {
		t.Error("empty list should fail")
	}
	if _, err := BandwidthSweep(models.AgeNet, []float64{-3}); err == nil {
		t.Error("negative bandwidth should fail")
	}
	if _, err := BandwidthSweep("nope", []float64{30}); err == nil {
		t.Error("unknown model should fail")
	}
}

package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"websnap/internal/obs"
	"websnap/internal/trace"
)

// LoadConfig parameterizes the load experiment's edge server: the same
// knobs cmd/edged exposes (-workers, -queue, -batch).
type LoadConfig struct {
	// Workers is the number of concurrent executor workers.
	Workers int
	// QueueDepth is the admission queue capacity; arrivals beyond it are
	// rejected and the client falls back to local rear execution.
	QueueDepth int
	// MaxBatch is the largest coalesced batch one worker executes.
	MaxBatch int
	// RequestsPerClient is how many closed-loop inferences each client
	// performs.
	RequestsPerClient int
	// SplitLabel is the partial-inference offloading point (default
	// PartialPointUsed, the Fig 6 choice).
	SplitLabel string
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Workers <= 0 {
		// Two workers put the saturation knee inside the default 1..64
		// client sweep for the benchmark models, so both the batching
		// win and the overload (fallback) regime are visible.
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1
	}
	if c.RequestsPerClient <= 0 {
		c.RequestsPerClient = 20
	}
	if c.SplitLabel == "" {
		c.SplitLabel = PartialPointUsed
	}
	return c
}

// LoadPoint is one concurrency setting's outcome: aggregate throughput and
// the client-observed latency distribution.
type LoadPoint struct {
	Clients int
	// Completed counts finished inferences (offloaded + local fallback).
	Completed int
	// Fallbacks counts inferences the server rejected (queue full) and the
	// client finished locally.
	Fallbacks int
	// Throughput is completed inferences per simulated second, counting
	// both offloaded and fallback completions.
	Throughput float64
	// OffloadedThroughput counts only server-executed inferences per
	// second — the server's useful capacity, which local fallbacks would
	// otherwise mask at saturation.
	OffloadedThroughput float64
	// P50 and P99 are latency percentiles over all completed inferences,
	// measured from the user event to the result on screen.
	P50, P99 time.Duration
	// Stages breaks offloaded-request latency down per pipeline stage
	// (capture, wire, queue, execute, result wire, restore), each summarized
	// as count/mean/p50/p95/p99. The queue and execute stages are where
	// load contention shows; the rest are the deterministic per-request
	// costs.
	Stages []trace.StageSummary
	// Mix is the offload decision mix at this load: partial offloads versus
	// overload fallbacks, in the same vocabulary the client-side audit uses.
	Mix []obs.PathCount
	// PredErr summarizes the cost model's prediction error over offloaded
	// requests: the unloaded single-request prediction versus the simulated
	// end-to-end latency. At low load the error is queueing-free and small;
	// as the server saturates, the signed error grows — exactly the gap a
	// load-aware offload policy must absorb.
	PredErr obs.ErrQuantiles
}

// FallbackRate is the fraction of inferences that fell back to local
// execution.
func (p LoadPoint) FallbackRate() float64 {
	if p.Completed == 0 {
		return 0
	}
	return float64(p.Fallbacks) / float64(p.Completed)
}

// loadSim is the deterministic discrete-event model of N closed-loop
// partial-offload clients sharing one edge server. Each client owns its
// wireless link (links are not shared); the server is the contended
// resource, exactly the regime the scheduler targets.
type loadSim struct {
	cfg LoadConfig
	// Client-side segment before the request reaches the server: front
	// execution + snapshot capture + upload transfer.
	clientPrep time.Duration
	// clientPrep's components, kept separate for the per-stage breakdown:
	// front DNN execution, snapshot capture, and upload transfer.
	frontExec, captureC, upload time.Duration
	// Server-side per-session costs paid inside the worker.
	restoreS, captureS time.Duration
	// serverRear is the batched rear forward-pass time.
	serverRear func(batch int) time.Duration
	// Client-side segment after the server responds: download + restore.
	clientPost time.Duration
	// clientPost's components: download transfer and result restore.
	download, restoreC time.Duration
	// localRear is the client's own rear execution, used on fallback.
	localRear time.Duration
}

// newLoadSim derives all segment durations from the scenario's calibrated
// cost models at the configured split point.
func newLoadSim(sc *Scenario, cfg LoadConfig) (*loadSim, error) {
	cfg = cfg.withDefaults()
	infos, err := sc.Net.Describe()
	if err != nil {
		return nil, err
	}
	points, err := sc.Net.PartitionPoints()
	if err != nil {
		return nil, err
	}
	idx := -1
	var featBytes int64
	for _, p := range points {
		if p.Label == cfg.SplitLabel {
			idx = p.Index
			featBytes = sc.textBytes(int(p.FeatureBytes / 4))
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("sim: %s has no partition point %q", sc.ModelName, cfg.SplitLabel)
	}
	frontExec, err := sc.Client.RangeTime(infos, 0, idx+1)
	if err != nil {
		return nil, err
	}
	localRear, err := sc.Client.RangeTime(infos, idx+1, len(infos))
	if err != nil {
		return nil, err
	}
	upBytes := sc.StateBytes + featBytes
	downBytes := sc.StateBytes + sc.ResultTextBytes
	ls := &loadSim{
		cfg:       cfg,
		frontExec: frontExec,
		captureC:  sc.Client.SnapshotTime(upBytes),
		upload:    sc.Network.TransferTime(upBytes),
		restoreS:  sc.Server.SnapshotTime(upBytes),
		captureS:  sc.Server.SnapshotTime(downBytes),
		download:  sc.Network.TransferTime(downBytes),
		restoreC:  sc.Client.SnapshotTime(downBytes),
		localRear: localRear,
	}
	ls.clientPrep = ls.frontExec + ls.captureC + ls.upload
	ls.clientPost = ls.download + ls.restoreC
	ls.serverRear = func(batch int) time.Duration {
		d, rerr := sc.Server.BatchRangeTime(infos, idx+1, len(infos), batch)
		if rerr != nil {
			// Bounds were validated above; batch >= 1 by construction.
			panic(rerr)
		}
		return d
	}
	return ls, nil
}

// service is one worker's occupancy for a batch: per-session restore and
// capture are serial, the rear forward pass is batched.
func (ls *loadSim) service(batch int) time.Duration {
	b := time.Duration(batch)
	return b*ls.restoreS + ls.serverRear(batch) + b*ls.captureS
}

// Event kinds.
const (
	evArrive = iota // a client's snapshot reaches the server
	evDone          // a worker finishes a batch
)

type pendingReq struct {
	client int
	start  time.Duration // when the user event fired
	arrive time.Duration // when the snapshot reached the server
}

type simEvent struct {
	at     time.Duration
	seq    int // tie-break for deterministic ordering
	kind   int
	req    pendingReq   // evArrive
	worker int          // evDone
	batch  []pendingReq // evDone
}

type eventHeap []*simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*simEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// run simulates clients concurrent closed-loop clients and returns the
// resulting LoadPoint. Each client pauses for a deterministic
// pseudo-random think time (0–250 ms) before every request; the event
// interleaving is therefore reproducible without the degenerate lockstep
// of perfectly symmetric clients.
func (ls *loadSim) run(clients int) LoadPoint {
	var (
		events    eventHeap
		seq       int
		queue     []pendingReq
		idle      = make([]int, 0, ls.cfg.Workers)
		remaining = make([]int, clients)
		rngs      = make([]xorshift, clients)
		latencies []time.Duration
		fallbacks int
		makespan  time.Duration
		rec       = trace.NewRecorder()
		audit     = obs.NewAuditor(obs.AuditorOptions{})
		// predicted is the cost model's unloaded single-request latency: no
		// queueing, batch of one. Decisions compare it against simulated
		// end-to-end latency to quantify prediction error under load.
		predicted = ls.clientPrep + ls.restoreS + ls.serverRear(1) + ls.captureS + ls.clientPost
	)
	for w := ls.cfg.Workers - 1; w >= 0; w-- {
		idle = append(idle, w) // LIFO: lowest index dispatched first
	}
	push := func(ev *simEvent) {
		ev.seq = seq
		seq++
		heap.Push(&events, ev)
	}
	// startRequest begins client c's next inference after time t: the
	// user thinks briefly, the event fires, the front runs, the snapshot
	// ships. Latency is measured from the user event.
	startRequest := func(c int, t time.Duration) {
		remaining[c]--
		start := t + rngs[c].think()
		push(&simEvent{at: start + ls.clientPrep, kind: evArrive, req: pendingReq{client: c, start: start}})
	}
	// finish records a completed inference and starts the client's next.
	finish := func(req pendingReq, t time.Duration) {
		latencies = append(latencies, t-req.start)
		if t > makespan {
			makespan = t
		}
		if remaining[req.client] > 0 {
			startRequest(req.client, t)
		}
	}
	dispatch := func(t time.Duration) {
		for len(idle) > 0 && len(queue) > 0 {
			w := idle[len(idle)-1]
			idle = idle[:len(idle)-1]
			take := ls.cfg.MaxBatch
			if take > len(queue) {
				take = len(queue)
			}
			batch := make([]pendingReq, take)
			copy(batch, queue[:take])
			queue = queue[take:]
			svc := ls.service(take)
			for _, req := range batch {
				rec.Observe(trace.StageQueue, t-req.arrive)
				rec.Observe(trace.StageExecute, svc)
			}
			push(&simEvent{at: t + svc, kind: evDone, worker: w, batch: batch})
		}
	}

	for c := 0; c < clients; c++ {
		remaining[c] = ls.cfg.RequestsPerClient
		rngs[c] = xorshift{s: uint64(c)*2654435761 + 0x9e3779b97f4a7c15}
		startRequest(c, 0)
	}
	for events.Len() > 0 {
		ev := heap.Pop(&events).(*simEvent)
		switch ev.kind {
		case evArrive:
			if len(idle) == 0 && len(queue) >= ls.cfg.QueueDepth {
				// Queue full: the server rejects, the client runs the
				// rear locally from its still-live app state.
				fallbacks++
				done := ev.at + ls.localRear
				audit.Record(obs.Decision{
					Path: obs.PathFallback, Reason: "overloaded",
					Measured: done - ev.req.start, HintAge: -1,
				})
				finish(ev.req, done)
				break
			}
			ev.req.arrive = ev.at
			queue = append(queue, ev.req)
			dispatch(ev.at)
		case evDone:
			idle = append(idle, ev.worker)
			for _, req := range ev.batch {
				// The fixed client-side stages of each offloaded request.
				rec.Observe(trace.StageCapture, ls.captureC)
				rec.Observe(trace.StageWire, ls.upload)
				rec.Observe(trace.StageResultWire, ls.download)
				rec.Observe(trace.StageRestore, ls.restoreC)
				done := ev.at + ls.clientPost
				audit.Record(obs.Decision{
					Path: obs.PathPartial, SplitLabel: ls.cfg.SplitLabel,
					Predicted: predicted, Measured: done - req.start,
					BatchSize: len(ev.batch), HintAge: -1,
				})
				finish(req, done)
			}
			dispatch(ev.at)
		}
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	sum := audit.Summary()
	pt := LoadPoint{
		Clients:   clients,
		Completed: len(latencies),
		Fallbacks: fallbacks,
		P50:       percentile(latencies, 0.50),
		P99:       percentile(latencies, 0.99),
		Stages:    rec.Summaries(),
		Mix:       sum.Mix,
		PredErr:   sum.PredErr,
	}
	if makespan > 0 {
		pt.Throughput = float64(pt.Completed) / makespan.Seconds()
		pt.OffloadedThroughput = float64(pt.Completed-pt.Fallbacks) / makespan.Seconds()
	}
	return pt
}

// xorshift is a tiny deterministic PRNG for per-client think-time jitter.
// Without jitter, identical closed-loop clients phase-lock into permanent
// cohorts and the results measure the lockstep artifact, not the server.
type xorshift struct{ s uint64 }

func (r *xorshift) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *xorshift) think() time.Duration {
	return time.Duration(r.next() % uint64(250*time.Millisecond))
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// LoadSweep simulates the edge server under increasing numbers of
// concurrent partial-offload clients of one model — the scheduler's target
// workload: every session shares the same pre-sent rear model, so the
// worker pool can coalesce them into batched forward passes.
func LoadSweep(modelName string, clients []int, cfg LoadConfig) ([]LoadPoint, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("sim: empty client list")
	}
	sc, err := NewScenario(modelName)
	if err != nil {
		return nil, err
	}
	ls, err := newLoadSim(sc, cfg)
	if err != nil {
		return nil, err
	}
	points := make([]LoadPoint, 0, len(clients))
	for _, n := range clients {
		if n <= 0 {
			return nil, fmt.Errorf("sim: non-positive client count %d", n)
		}
		points = append(points, ls.run(n))
	}
	return points, nil
}

package chaos_test

import (
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"websnap/internal/chaos"
	"websnap/internal/client"
	"websnap/internal/edge"
	"websnap/internal/fleet"
	"websnap/internal/mlapp"
	"websnap/internal/models"
	"websnap/internal/obs"
	"websnap/internal/roam"
	"websnap/internal/testutil"
	"websnap/internal/webapp"
)

// flapFleetEdge starts one fleet-enabled edge server whose registry client
// dials through the flapped registry address.
func flapFleetEdge(t *testing.T, registryAddr string) (*edge.Server, string) {
	t.Helper()
	cat := webapp.NewCatalog()
	if err := cat.Add(mlapp.FullRegistry()); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	rc := fleet.NewRegistryClient(registryAddr, fleet.ClientOptions{Timeout: 500 * time.Millisecond})
	srv, err := edge.NewServer(edge.Config{
		Catalog:       cat,
		Installed:     true,
		Workers:       2,
		AdvertiseAddr: addr,
		Blobs:         fleet.NewBlobStore(),
		Locator:       rc,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	agent, err := fleet.StartAgent(fleet.AgentConfig{
		Client:   rc,
		Addr:     addr,
		Capacity: 2,
		TTL:      2 * time.Second,
		Interval: 20 * time.Millisecond,
		Load:     srv.LoadHint,
		Blobs:    srv.BlobKeys,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		agent.Close()
		srv.Close()
		<-done
	})
	return srv, addr
}

// TestRegistryFlapFailoverSoak puts the fleet's control plane through an
// outage while the data plane keeps offloading: the registry goes dark
// mid-session, the client's placement view degrades to its cached
// last-known-good copy, and a forced failover to another server happens
// entirely during the outage. The soak invariants:
//
//   - every event's result stays bit-identical to a local twin, outage or
//     not (a dead registry degrades placement freshness, never
//     correctness);
//   - placement failover never double-executes an event: server execution
//     counters sum exactly to client-observed offloads, and every event
//     records exactly one terminal audit decision;
//   - the degraded view source is recorded in the switch audit trail.
func TestRegistryFlapFailoverSoak(t *testing.T) {
	testutil.CheckGoroutines(t, 5*time.Second)

	// Registry behind a flap listener the test toggles: heartbeats, view
	// fetches, and blob locates all hit the same outage.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var down atomic.Bool
	flap := chaos.NewFlapListener(ln, func(int) bool { return down.Load() })
	rsrv := fleet.NewRegistryServer(fleet.NewRegistry(fleet.RegistryOptions{TTL: 2 * time.Second}), nil)
	rdone := make(chan error, 1)
	go func() { rdone <- rsrv.Serve(flap) }()
	t.Cleanup(func() {
		rsrv.Close()
		<-rdone
	})
	regAddr := ln.Addr().String()

	srvA, addrA := flapFleetEdge(t, regAddr)
	srvB, addrB := flapFleetEdge(t, regAddr)

	model, err := models.BuildTinyNet("tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	want := localExpected(t, model, []uint64{1, 2})

	var mu sync.Mutex
	preferred := addrA
	probe := func(addr string) (time.Duration, error) {
		mu.Lock()
		defer mu.Unlock()
		if addr == preferred {
			return time.Millisecond, nil
		}
		return 100 * time.Millisecond, nil
	}
	rc := fleet.NewRegistryClient(regAddr, fleet.ClientOptions{Timeout: 500 * time.Millisecond})
	var switchLog strings.Builder
	roamer, err := roam.New(roam.Config{
		FleetView: fleet.PlacementView(rc, fleet.PolicyLoadWeighted, "flap-app"),
		Probe:     probe,
		Logger:    obs.NewLogger(&switchLog, obs.LevelInfo),
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := roamer.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer roamer.Close()
	if addr, _ := roamer.Current(); addr != addrA {
		t.Fatalf("connected to %q, want A=%q", addr, addrA)
	}

	app, err := mlapp.NewFullApp("flap-app", "tiny", model, tinyLabels)
	if err != nil {
		t.Fatal(err)
	}
	auditor := obs.NewAuditor(obs.AuditorOptions{})
	off, err := client.NewOffloader(app, conn, client.Options{
		OffloadEventTypes: []string{mlapp.EventClick},
		Models:            []client.ModelToSend{{Name: "tiny", Net: model}},
		EnableDelta:       true,
		BlobRefPreSend:    true,
		FleetSync:         true,
		Placement:         string(fleet.PolicyLoadWeighted),
		Audit:             auditor,
		LocalFallback:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	off.StartPreSend()
	if err := off.WaitForAcks(); err != nil {
		t.Fatal(err)
	}
	events := 0
	runOnce := func(stage string, seed uint64) {
		t.Helper()
		events++
		if err := mlapp.LoadImage(app, mlapp.SyntheticImage(soakImageVolume, seed)); err != nil {
			t.Fatal(err)
		}
		app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
		if _, err := off.Run(20); err != nil {
			t.Fatalf("%s: run: %v", stage, err)
		}
		if got := mlapp.Result(app); got != want.text[seed] {
			t.Errorf("%s: result %q, want %q (bit-identical through the outage)", stage, got, want.text[seed])
		}
	}

	// Steady state on A with a live registry.
	runOnce("A pre-outage", 1)
	runOnce("A pre-outage", 2)

	// Registry goes dark. Heartbeats start failing, the view freezes, and
	// the failover below runs on the cached last-known-good copy.
	down.Store(true)
	mu.Lock()
	preferred = addrB
	mu.Unlock()
	newConn, switched, err := roamer.Evaluate()
	if err != nil || !switched {
		t.Fatalf("failover during outage: switched=%v err=%v", switched, err)
	}
	if src := roamer.ViewSource(); src != "registry-cached" {
		t.Errorf("view source during outage = %q, want registry-cached", src)
	}
	if err := off.Retarget(newConn); err != nil {
		t.Fatal(err)
	}
	// The reference pre-send cannot consult the blob index mid-outage; the
	// offloader degrades to re-uploading the bytes — wasteful, never wrong.
	if err := off.WaitForAcks(); err != nil {
		t.Fatalf("pre-send to B during outage: %v", err)
	}
	runOnce("B mid-outage", 1)
	runOnce("B mid-outage", 2)

	// Registry recovers; heartbeats re-register and life goes on.
	down.Store(false)
	runOnce("B post-outage", 1)
	runOnce("B post-outage", 2)

	// The outage was actually exercised.
	if drops := flap.Drops(); len(drops) == 0 {
		t.Fatal("registry flap dropped no connections; outage never happened")
	}
	if !strings.Contains(switchLog.String(), `"view":"registry-cached"`) {
		t.Errorf("switch audit trail lacks the degraded view source:\n%s", switchLog.String())
	}

	// Exactly-once: each event executed on exactly one server (counters
	// reconcile with client-observed offloads — the clean data plane means
	// strict equality, so a double execution cannot hide), and exactly one
	// terminal audit decision per event.
	st := off.Stats()
	if st.LocalFallbacks != 0 {
		t.Errorf("local fallbacks = %d, want 0 (data plane was clean)", st.LocalFallbacks)
	}
	executed := int64(0)
	for _, srv := range []*edge.Server{srvA, srvB} {
		m := srv.Metrics()
		executed += m.SnapshotsExecuted + m.DeltasExecuted
	}
	if executed != int64(st.Offloads) || st.Offloads != events {
		t.Errorf("executions=%d offloads=%d events=%d — placement failover must execute each event exactly once",
			executed, st.Offloads, events)
	}
	if got := auditor.Total(); got != int64(events) {
		t.Errorf("audit decisions = %d, want %d (exactly one terminal decision per event)", got, events)
	}
	mix := make(map[obs.DecisionPath]int64)
	for _, pc := range auditor.Summary().Mix {
		mix[pc.Path] = pc.Count
	}
	if mix[obs.PathError] != 0 {
		t.Errorf("%d error-path decisions despite a healthy data plane", mix[obs.PathError])
	}
}

// Package chaos is a seeded, deterministic fault-injection layer for the
// client↔edge transport. It wraps net.Conn / net.Listener (composing with
// netem's bandwidth shaping) and injects scripted or randomized faults:
// mid-frame connection resets, byte corruption, read/write stalls,
// truncation, duplicated delivery, listener-level connection refusal, and
// time-varying bandwidth/latency schedules.
//
// Determinism contract: an Injector is created from a single int64 seed.
// Every connection it wraps receives a Plan derived from (seed, connection
// index) through its own rand source, so the k-th wrapped connection's
// fault schedule is a pure function of the seed — independent of timing,
// goroutine interleaving, or how many random draws earlier plans consumed.
// Faults trigger at cumulative byte offsets in each direction's stream
// (not at call counts), so the schedule is also independent of how the
// peer chunks its reads and writes. A failing soak run therefore replays
// from its seed alone.
package chaos

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"websnap/internal/netem"
)

// ErrInjected marks every connection failure the chaos layer fabricates,
// so tests can tell injected faults from real ones.
var ErrInjected = errors.New("chaos: injected fault")

// Direction selects which half of the wrapped stream a fault applies to,
// from the wrapping side's point of view.
type Direction uint8

// Directions.
const (
	DirWrite Direction = iota
	DirRead
)

func (d Direction) String() string {
	if d == DirWrite {
		return "write"
	}
	return "read"
}

// FaultKind identifies one injected misbehavior.
type FaultKind uint8

// Fault kinds.
const (
	// FaultReset severs the connection once Offset bytes have passed in
	// the fault's direction: bytes before the offset are delivered, the
	// rest of the call fails and the underlying conn is closed.
	FaultReset FaultKind = iota + 1
	// FaultCorrupt XORs Mask into the byte at Offset.
	FaultCorrupt
	// FaultStall sleeps Delay before moving the byte at Offset.
	FaultStall
	// FaultTruncate silently drops everything from Offset on — the write
	// reports success — then closes the conn: the peer sees a frame that
	// stops mid-stream.
	FaultTruncate
	// FaultDuplicate re-delivers the Dup bytes preceding Offset (write
	// direction only), modeling duplicated segment delivery.
	FaultDuplicate
	// FaultOutage models a service-level outage: a FlapListener drops every
	// connection accepted while its schedule says the service is down — the
	// dialer sees a successful connect followed by an immediate close, which
	// is how a crashed or partitioned registry looks from outside. It is
	// never drawn by GenPlan (randomized per-connection schedules keep their
	// seed-stable draw); soaks install it deliberately at the listener.
	FaultOutage
)

func (k FaultKind) String() string {
	switch k {
	case FaultReset:
		return "reset"
	case FaultCorrupt:
		return "corrupt"
	case FaultStall:
		return "stall"
	case FaultTruncate:
		return "truncate"
	case FaultDuplicate:
		return "duplicate"
	case FaultOutage:
		return "outage"
	default:
		return fmt.Sprintf("unknown(%d)", uint8(k))
	}
}

// Fault is one scheduled misbehavior, pinned to a cumulative byte offset
// in one direction of the stream.
type Fault struct {
	Kind   FaultKind
	Dir    Direction
	Offset int64
	// Mask is the corruption XOR mask (FaultCorrupt; never zero).
	Mask byte
	// Delay is the stall duration (FaultStall).
	Delay time.Duration
	// Dup is how many preceding bytes to re-deliver (FaultDuplicate).
	Dup int
}

func (f Fault) String() string {
	s := fmt.Sprintf("%s@%s:%d", f.Kind, f.Dir, f.Offset)
	switch f.Kind {
	case FaultCorrupt:
		s += fmt.Sprintf("^%#02x", f.Mask)
	case FaultStall:
		s += fmt.Sprintf("+%v", f.Delay)
	case FaultDuplicate:
		s += fmt.Sprintf("x%d", f.Dup)
	}
	return s
}

// Phase is one leg of a time-varying link schedule: Profile shapes writes
// from cumulative write offset Offset onward, until the next phase.
type Phase struct {
	Offset  int64
	Profile netem.Profile
}

// Plan is one connection's complete fault schedule. The zero Plan injects
// nothing.
type Plan struct {
	// Conn is the plan's connection index within its Injector (assignment
	// order for WrapConn, accept order for wrapped listeners).
	Conn int
	// Refuse makes a wrapped listener close the connection immediately
	// after accepting it; WrapConn treats it as a reset at write offset 0.
	Refuse bool
	// AcceptDelay stalls the listener before handing the connection out.
	AcceptDelay time.Duration
	// Faults is the schedule, sorted by (direction, offset).
	Faults []Fault
	// Phases is the time-varying bandwidth/latency schedule for the write
	// direction; empty means no shaping.
	Phases []Phase
}

// String renders the plan compactly for failure messages, e.g.
// "conn2[refuse]" or "conn0{corrupt@write:117^0x40 stall@read:2048+5ms}".
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conn%d", p.Conn)
	if p.Refuse {
		b.WriteString("[refuse]")
	}
	if p.AcceptDelay > 0 {
		fmt.Fprintf(&b, "[accept+%v]", p.AcceptDelay)
	}
	if len(p.Faults) > 0 {
		b.WriteByte('{')
		for i, f := range p.Faults {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(f.String())
		}
		b.WriteByte('}')
	}
	for _, ph := range p.Phases {
		fmt.Fprintf(&b, "(%d:%gbps+%v)", ph.Offset, ph.Profile.BandwidthBitsPerSec, ph.Profile.Latency)
	}
	return b.String()
}

// Options bounds randomized plan generation. The zero value selects usable
// defaults for soak tests against framed snapshot traffic.
type Options struct {
	// FaultProb is the probability a connection gets any faults at all;
	// the rest pass traffic through untouched (beyond shaping). Negative
	// disables faults entirely. Zero selects 0.7.
	FaultProb float64
	// MaxFaults caps the faults per connection. Zero selects 3.
	MaxFaults int
	// MaxOffset bounds fault byte offsets. Offsets are drawn log-uniformly
	// in [0, MaxOffset) so early (frame-header) and late (mid-body) faults
	// both occur. Zero selects 64 KiB.
	MaxOffset int64
	// MaxDelay bounds stall and accept delays. Zero selects 20ms.
	MaxDelay time.Duration
	// RefuseProb is the probability of listener-level refusal. Negative
	// disables it. Zero selects 0.05.
	RefuseProb float64
	// ShapeProb is the probability of a time-varying bandwidth schedule.
	// Negative disables shaping. Zero selects 0.25.
	ShapeProb float64
	// MinBandwidth is the slowest phase bandwidth in bits/s. Zero selects
	// 8e6 (1 MB/s) so shaped soak sessions stay fast.
	MinBandwidth float64
}

func (o Options) withDefaults() Options {
	if o.FaultProb == 0 {
		o.FaultProb = 0.7
	}
	if o.MaxFaults <= 0 {
		o.MaxFaults = 3
	}
	if o.MaxOffset <= 0 {
		o.MaxOffset = 64 << 10
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 20 * time.Millisecond
	}
	if o.RefuseProb == 0 {
		o.RefuseProb = 0.05
	}
	if o.ShapeProb == 0 {
		o.ShapeProb = 0.25
	}
	if o.MinBandwidth <= 0 {
		o.MinBandwidth = 8e6
	}
	return o
}

// GenPlan draws one randomized plan from rng under the given bounds. It is
// exposed so tests can pin schedules without an Injector.
func GenPlan(rng *rand.Rand, conn int, opts Options) Plan {
	opts = opts.withDefaults()
	p := Plan{Conn: conn}
	if opts.RefuseProb > 0 && rng.Float64() < opts.RefuseProb {
		p.Refuse = true
		return p
	}
	if opts.ShapeProb > 0 && rng.Float64() < opts.ShapeProb {
		n := 1 + rng.Intn(3)
		off := int64(0)
		for i := 0; i < n; i++ {
			// Log-uniform bandwidth across two decades above the floor.
			bw := opts.MinBandwidth * math.Pow(10, rng.Float64()*2)
			p.Phases = append(p.Phases, Phase{
				Offset: off,
				Profile: netem.Profile{
					BandwidthBitsPerSec: bw,
					Latency:             time.Duration(rng.Int63n(int64(2 * time.Millisecond))),
				},
			})
			off += 1 + rng.Int63n(opts.MaxOffset)
		}
	}
	if opts.FaultProb > 0 && rng.Float64() < opts.FaultProb {
		n := 1 + rng.Intn(opts.MaxFaults)
		for i := 0; i < n; i++ {
			f := Fault{
				Kind:   FaultKind(1 + rng.Intn(5)),
				Dir:    Direction(rng.Intn(2)),
				Offset: logUniform(rng, opts.MaxOffset),
			}
			switch f.Kind {
			case FaultCorrupt:
				f.Mask = byte(1 + rng.Intn(255))
			case FaultStall:
				f.Delay = time.Duration(1 + rng.Int63n(int64(opts.MaxDelay)))
			case FaultDuplicate:
				// Duplication re-plays already-sent bytes; read-side
				// duplication would require peer cooperation, so pin it
				// to the write direction.
				f.Dir = DirWrite
				f.Dup = 1 + rng.Intn(4096)
			}
			p.Faults = append(p.Faults, f)
		}
		sortFaults(p.Faults)
	}
	return p
}

// logUniform draws an offset in [0, max) favoring small values, so faults
// land in frame headers about as often as deep inside bodies.
func logUniform(rng *rand.Rand, max int64) int64 {
	if max <= 1 {
		return 0
	}
	bits := 1
	for int64(1)<<bits < max {
		bits++
	}
	v := rng.Int63n(int64(1) << (1 + rng.Intn(bits)))
	if v >= max {
		v = max - 1
	}
	return v
}

func sortFaults(fs []Fault) {
	// Insertion sort: fault lists are tiny and this avoids importing sort
	// for an interface allocation on the soak's hot setup path.
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && less(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func less(a, b Fault) bool {
	if a.Dir != b.Dir {
		return a.Dir < b.Dir
	}
	return a.Offset < b.Offset
}

// Injector derives per-connection fault plans from one seed.
type Injector struct {
	opts Options
	seed int64

	mu    sync.Mutex
	next  int
	plans []Plan
}

// New creates an injector. Identical (seed, opts) yield identical plan
// sequences.
func New(seed int64, opts Options) *Injector {
	return &Injector{opts: opts.withDefaults(), seed: seed}
}

// Seed returns the injector's seed, for failure messages.
func (in *Injector) Seed() int64 { return in.seed }

// nextPlan derives the plan for the next connection index. Each plan uses
// its own rand source seeded from (seed, index), so plan k never depends
// on how much randomness plans 0..k-1 consumed.
func (in *Injector) nextPlan() Plan {
	in.mu.Lock()
	defer in.mu.Unlock()
	idx := in.next
	in.next++
	rng := rand.New(rand.NewSource(connSeed(in.seed, idx)))
	p := GenPlan(rng, idx, in.opts)
	in.plans = append(in.plans, p)
	return p
}

// connSeed mixes the master seed with a connection index (splitmix64-style)
// so adjacent indices get uncorrelated streams.
func connSeed(seed int64, idx int) int64 {
	z := uint64(seed) + uint64(idx+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Plans returns a copy of every plan handed out so far, in connection
// order — the injector's complete fault schedule, for replay comparison.
func (in *Injector) Plans() []Plan {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Plan(nil), in.plans...)
}

// WrapConn wraps c with the next connection plan. A Refuse plan becomes an
// immediate write-direction reset.
func (in *Injector) WrapConn(c net.Conn) net.Conn {
	p := in.nextPlan()
	if p.Refuse {
		p.Faults = []Fault{{Kind: FaultReset, Dir: DirWrite, Offset: 0}}
		p.Refuse = false
	}
	return NewConn(c, p)
}

// WrapListener wraps ln so every accepted connection is wrapped with the
// next connection plan. Refuse plans close the connection right after
// accept — the client sees a successful dial followed by EOF — and the
// listener moves on to the next connection.
func (in *Injector) WrapListener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, inj: in}
}

type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		p := l.inj.nextPlan()
		if p.AcceptDelay > 0 {
			time.Sleep(p.AcceptDelay)
		}
		if p.Refuse {
			c.Close()
			continue
		}
		return NewConn(c, p), nil
	}
}

// FlapListener wraps a listener with a deterministic outage schedule —
// the registry-outage/flap fault. Connections accepted while Down reports
// true are closed immediately (recorded as FaultOutage drops); the rest
// pass through untouched. The schedule is defined over accept indices
// rather than wall time, so a soak's outage windows replay exactly
// regardless of machine speed: flapping is "down for the next k dials",
// not "down for the next k milliseconds".
type FlapListener struct {
	net.Listener
	down func(accept int) bool

	mu    sync.Mutex
	next  int
	drops []Fault
}

// NewFlapListener wraps ln; down decides per accept index (0-based,
// counting every inbound connection) whether the service is in an outage
// window. A nil down never flaps.
func NewFlapListener(ln net.Listener, down func(accept int) bool) *FlapListener {
	return &FlapListener{Listener: ln, down: down}
}

// Accept returns the next connection accepted during an up window,
// silently dropping those that land in outage windows.
func (l *FlapListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		idx := l.next
		l.next++
		isDown := l.down != nil && l.down(idx)
		if isDown {
			l.drops = append(l.drops, Fault{Kind: FaultOutage, Dir: DirWrite, Offset: int64(idx)})
		}
		l.mu.Unlock()
		if isDown {
			c.Close()
			continue
		}
		return c, nil
	}
}

// Drops returns the outage schedule's refusals so far, one FaultOutage per
// dropped connection with Offset holding its accept index — for failure
// messages and for asserting the soak actually exercised the outage.
func (l *FlapListener) Drops() []Fault {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Fault(nil), l.drops...)
}

// Accepts returns how many connections have arrived, dropped or not.
func (l *FlapListener) Accepts() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Conn applies one Plan to a wrapped net.Conn. Faults trigger at
// cumulative byte offsets per direction; write phases pace like netem.
// Reads and writes each take their own lock, matching net.Conn's
// concurrency contract (one reader plus one writer).
type Conn struct {
	inner net.Conn
	plan  Plan

	wmu      sync.Mutex
	wOff     int64
	wFaults  []Fault
	phase    int
	nextFree time.Time

	rmu     sync.Mutex
	rOff    int64
	rFaults []Fault
	// rErr is the injected error to report once a read-direction reset has
	// delivered its clean prefix.
	rErr error
}

var _ net.Conn = (*Conn)(nil)

// NewConn wraps c with a scripted plan. Faults need not be sorted.
func NewConn(c net.Conn, p Plan) *Conn {
	fs := append([]Fault(nil), p.Faults...)
	sortFaults(fs)
	cc := &Conn{inner: c, plan: p}
	for _, f := range fs {
		if f.Dir == DirWrite {
			cc.wFaults = append(cc.wFaults, f)
		} else {
			cc.rFaults = append(cc.rFaults, f)
		}
	}
	return cc
}

// Plan returns the connection's fault schedule.
func (c *Conn) Plan() Plan { return c.plan }

// injectedErr builds the error for a fired terminal fault.
func injectedErr(f Fault) error {
	return fmt.Errorf("%w: %s", ErrInjected, f)
}

// Write delivers b through the fault schedule: stalls sleep, corruption
// flips bytes, duplication re-sends recent bytes, truncation silently
// swallows the tail then severs the conn, resets sever it mid-buffer.
// Shaping phases pace the delivered bytes.
func (c *Conn) Write(b []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	written := 0
	for written < len(b) {
		chunk := b[written:]
		// The next scheduled fault inside this chunk bounds how much is
		// delivered untouched before the fault fires.
		var fault *Fault
		if len(c.wFaults) > 0 {
			f := c.wFaults[0]
			rel := f.Offset - c.wOff
			if rel < int64(len(chunk)) {
				fault = &f
				chunk = chunk[:rel]
			}
		}
		if len(chunk) > 0 {
			if err := c.pace(len(chunk)); err != nil {
				return written, err
			}
			n, err := c.inner.Write(chunk)
			c.wOff += int64(n)
			written += n
			if err != nil {
				return written, err
			}
			continue // re-evaluate faults at the new offset
		}
		// A fault fires exactly at the current offset.
		c.wFaults = c.wFaults[1:]
		switch fault.Kind {
		case FaultStall:
			time.Sleep(fault.Delay)
		case FaultCorrupt:
			corrupted := []byte{b[written] ^ fault.Mask}
			if err := c.pace(1); err != nil {
				return written, err
			}
			if _, err := c.inner.Write(corrupted); err != nil {
				return written, err
			}
			c.wOff++
			written++
		case FaultDuplicate:
			dup := int64(fault.Dup)
			if dup > c.wOff {
				dup = c.wOff
			}
			// Re-deliver the most recent bytes of this buffer; bytes from
			// earlier buffers are gone, so duplication is capped at what
			// this call has already delivered.
			if avail := int64(written); dup > avail {
				dup = avail
			}
			if dup > 0 {
				if _, err := c.inner.Write(b[written-int(dup) : written]); err != nil {
					return written, err
				}
			}
		case FaultTruncate:
			c.inner.Close()
			c.wFaults = nil
			// Report success: the caller believes the frame went out.
			return len(b), nil
		case FaultReset:
			c.inner.Close()
			c.wFaults = nil
			return written, injectedErr(*fault)
		}
	}
	return written, nil
}

// pace sleeps so cumulative writes respect the current shaping phase, in
// the same virtual-clock style as netem.Conn.
func (c *Conn) pace(n int) error {
	if len(c.plan.Phases) == 0 {
		return nil
	}
	for c.phase+1 < len(c.plan.Phases) && c.wOff >= c.plan.Phases[c.phase+1].Offset {
		c.phase++
	}
	p := c.plan.Phases[c.phase].Profile
	now := time.Now()
	start := c.nextFree
	if start.Before(now) {
		start = now.Add(p.Latency)
	}
	var dur time.Duration
	if p.BandwidthBitsPerSec > 0 {
		dur = time.Duration(float64(n) * 8 / p.BandwidthBitsPerSec * float64(time.Second))
	}
	c.nextFree = start.Add(dur)
	if wait := c.nextFree.Sub(now); wait > 0 {
		time.Sleep(wait)
	}
	return nil
}

// Read pulls from the inner conn, then applies read-direction faults to
// the received bytes: corruption flips them, stalls sleep before
// delivery, resets discard from the fault offset and sever the conn.
func (c *Conn) Read(b []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if c.rErr != nil {
		return 0, c.rErr
	}
	if len(c.rFaults) > 0 && c.rFaults[0].Offset == c.rOff {
		// Offset-0-of-the-fault cases that must fire before blocking on a
		// read: a reset exactly at the current offset should not wait for
		// the peer to send more first.
		f := c.rFaults[0]
		if f.Kind == FaultReset {
			c.rFaults = c.rFaults[1:]
			c.inner.Close()
			return 0, injectedErr(f)
		}
	}
	n, err := c.inner.Read(b)
	if n == 0 {
		return n, err
	}
	end := c.rOff + int64(n)
	delivered := n
	for len(c.rFaults) > 0 {
		f := c.rFaults[0]
		if f.Offset >= end {
			break
		}
		rel := int(f.Offset - c.rOff)
		c.rFaults = c.rFaults[1:]
		switch f.Kind {
		case FaultCorrupt:
			b[rel] ^= f.Mask
		case FaultStall:
			time.Sleep(f.Delay)
		case FaultReset, FaultTruncate:
			c.inner.Close()
			c.rFaults = nil
			c.rErr = injectedErr(f)
			if rel > 0 {
				// Deliver the clean prefix; the next Read errors out.
				c.rOff += int64(rel)
				return rel, nil
			}
			return 0, c.rErr
		}
	}
	c.rOff = end
	return delivered, err
}

// Close closes the wrapped connection.
func (c *Conn) Close() error { return c.inner.Close() }

// LocalAddr returns the wrapped connection's local address.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr returns the wrapped connection's remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline forwards to the wrapped connection.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline forwards to the wrapped connection.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline forwards to the wrapped connection.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

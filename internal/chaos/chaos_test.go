package chaos

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"websnap/internal/netem"
)

// pipePair returns the two ends of an in-memory connection, the chaos end
// wrapped with the given plan.
func pipePair(t *testing.T, p Plan) (*Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return NewConn(a, p), b
}

// readAll drains peer until EOF/error in the background.
func readAllAsync(peer net.Conn) <-chan []byte {
	ch := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(peer)
		ch <- data
	}()
	return ch
}

func TestSeedDeterminism(t *testing.T) {
	// Identical (seed, opts) must yield identical plan sequences; a
	// different seed must diverge.
	a := New(42, Options{})
	b := New(42, Options{})
	c := New(43, Options{})
	dummy := func() net.Conn { p1, p2 := net.Pipe(); p2.Close(); return p1 }
	for i := 0; i < 50; i++ {
		a.WrapConn(dummy())
		b.WrapConn(dummy())
		c.WrapConn(dummy())
	}
	pa, pb, pc := a.Plans(), b.Plans(), c.Plans()
	same := 0
	for i := range pa {
		if pa[i].String() != pb[i].String() {
			t.Fatalf("plan %d diverged under one seed:\n  %s\n  %s", i, pa[i], pb[i])
		}
		if pa[i].String() == pc[i].String() {
			same++
		}
	}
	if same == len(pa) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestPlanIndependentOfEarlierDraws(t *testing.T) {
	// Plan k is a pure function of (seed, k): wrapping 10 conns then
	// inspecting plan 9 must equal generating plan 9 directly.
	in := New(7, Options{})
	dummy := func() net.Conn { p1, p2 := net.Pipe(); p2.Close(); return p1 }
	for i := 0; i < 10; i++ {
		in.WrapConn(dummy())
	}
	got := in.Plans()[9]
	rng := rand.New(rand.NewSource(connSeed(7, 9)))
	want := GenPlan(rng, 9, Options{})
	// WrapConn rewrites Refuse into a reset fault; normalize the same way.
	if want.Refuse {
		want.Faults = []Fault{{Kind: FaultReset, Dir: DirWrite, Offset: 0}}
		want.Refuse = false
	}
	if got.String() != want.String() {
		t.Errorf("plan 9 = %s, want %s", got, want)
	}
}

func TestWriteCorruptionAtOffset(t *testing.T) {
	cc, peer := pipePair(t, Plan{Faults: []Fault{
		{Kind: FaultCorrupt, Dir: DirWrite, Offset: 3, Mask: 0xFF},
	}})
	got := readAllAsync(peer)
	msg := []byte("hello world")
	if _, err := cc.Write(msg); err != nil {
		t.Fatal(err)
	}
	cc.Close()
	data := <-got
	want := append([]byte(nil), msg...)
	want[3] ^= 0xFF
	if !bytes.Equal(data, want) {
		t.Errorf("peer received %q, want %q", data, want)
	}
}

func TestWriteResetMidBuffer(t *testing.T) {
	cc, peer := pipePair(t, Plan{Faults: []Fault{
		{Kind: FaultReset, Dir: DirWrite, Offset: 5},
	}})
	got := readAllAsync(peer)
	n, err := cc.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n != 5 {
		t.Errorf("reported %d bytes written, want 5", n)
	}
	if data := <-got; !bytes.Equal(data, []byte("01234")) {
		t.Errorf("peer received %q, want %q", data, "01234")
	}
	// The conn is dead: further writes fail.
	if _, err := cc.Write([]byte("x")); err == nil {
		t.Error("write after reset should fail")
	}
}

func TestWriteTruncationReportsSuccess(t *testing.T) {
	cc, peer := pipePair(t, Plan{Faults: []Fault{
		{Kind: FaultTruncate, Dir: DirWrite, Offset: 4},
	}})
	got := readAllAsync(peer)
	n, err := cc.Write([]byte("0123456789"))
	if err != nil || n != 10 {
		t.Fatalf("truncated write = (%d, %v), want silent success (10, nil)", n, err)
	}
	if data := <-got; !bytes.Equal(data, []byte("0123")) {
		t.Errorf("peer received %q, want %q", data, "0123")
	}
}

func TestWriteDuplicateDelivery(t *testing.T) {
	cc, peer := pipePair(t, Plan{Faults: []Fault{
		{Kind: FaultDuplicate, Dir: DirWrite, Offset: 4, Dup: 2},
	}})
	got := readAllAsync(peer)
	if _, err := cc.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	cc.Close()
	if data := <-got; !bytes.Equal(data, []byte("abcdcdef")) {
		t.Errorf("peer received %q, want %q", data, "abcdcdef")
	}
}

func TestReadCorruptionAndReset(t *testing.T) {
	cc, peer := pipePair(t, Plan{Faults: []Fault{
		{Kind: FaultCorrupt, Dir: DirRead, Offset: 1, Mask: 0x01},
		{Kind: FaultReset, Dir: DirRead, Offset: 4},
	}})
	go func() {
		peer.Write([]byte("abcdefgh"))
	}()
	buf := make([]byte, 16)
	var recv []byte
	var err error
	for {
		var n int
		n, err = cc.Read(buf)
		recv = append(recv, buf[:n]...)
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrInjected) && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
		t.Fatalf("read err = %v, want injected/EOF/closed", err)
	}
	want := []byte("a\x63cd") // 'b' ^ 0x01 = 'c'
	if !bytes.Equal(recv, want) {
		t.Errorf("received %q, want %q (clean prefix up to reset)", recv, want)
	}
}

func TestStallDelaysDelivery(t *testing.T) {
	const delay = 30 * time.Millisecond
	cc, peer := pipePair(t, Plan{Faults: []Fault{
		{Kind: FaultStall, Dir: DirWrite, Offset: 2, Delay: delay},
	}})
	got := readAllAsync(peer)
	start := time.Now()
	if _, err := cc.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("write returned after %v, want >= %v stall", elapsed, delay)
	}
	cc.Close()
	if data := <-got; !bytes.Equal(data, []byte("abcd")) {
		t.Errorf("peer received %q, want %q", data, "abcd")
	}
}

func TestShapingPhasesPaceWrites(t *testing.T) {
	// 8 kbit/s: 100 bytes take 100ms; the second phase at offset 100 is
	// effectively unlimited, so the tail is fast.
	cc, peer := pipePair(t, Plan{Phases: []Phase{
		{Offset: 0, Profile: netem.Profile{BandwidthBitsPerSec: 8e3}},
		{Offset: 100, Profile: netem.Profile{BandwidthBitsPerSec: 8e9}},
	}})
	got := readAllAsync(peer)
	start := time.Now()
	if _, err := cc.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	slow := time.Since(start)
	start = time.Now()
	if _, err := cc.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	fast := time.Since(start)
	cc.Close()
	<-got
	if slow < 50*time.Millisecond {
		t.Errorf("phase-1 write took %v, want >= 50ms of pacing", slow)
	}
	if fast > slow/2 {
		t.Errorf("phase-2 write took %v, want well under phase-1's %v", fast, slow)
	}
}

func TestListenerRefusal(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// RefuseProb 1: every accept closes the conn and keeps listening.
	in := New(1, Options{RefuseProb: 1})
	wrapped := in.WrapListener(ln)
	accepted := make(chan error, 1)
	go func() {
		_, err := wrapped.Accept()
		accepted <- err
	}()
	for i := 0; i < 3; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Error("refused conn delivered data")
		}
		c.Close()
	}
	select {
	case err := <-accepted:
		t.Fatalf("Accept returned (%v) despite refusal plans", err)
	case <-time.After(50 * time.Millisecond):
	}
	ln.Close()
	if err := <-accepted; err == nil {
		t.Error("Accept on closed listener should error")
	}
}

// TestFaultScheduleChunkingIndependence pins the offset-based trigger
// contract: the same plan fires the same corruption regardless of how the
// writer chunks its calls.
func TestFaultScheduleChunkingIndependence(t *testing.T) {
	plan := Plan{Faults: []Fault{
		{Kind: FaultCorrupt, Dir: DirWrite, Offset: 7, Mask: 0xA5},
		{Kind: FaultCorrupt, Dir: DirWrite, Offset: 13, Mask: 0x5A},
	}}
	msg := []byte("the quick brown fox")
	deliver := func(chunks ...[]byte) []byte {
		cc, peer := pipePair(t, plan)
		got := readAllAsync(peer)
		for _, ch := range chunks {
			if _, err := cc.Write(ch); err != nil {
				t.Fatal(err)
			}
		}
		cc.Close()
		return <-got
	}
	whole := deliver(msg)
	split := deliver(msg[:3], msg[3:9], msg[9:])
	if !bytes.Equal(whole, split) {
		t.Errorf("chunking changed the faulted stream:\n  whole %q\n  split %q", whole, split)
	}
	want := append([]byte(nil), msg...)
	want[7] ^= 0xA5
	want[13] ^= 0x5A
	if !bytes.Equal(whole, want) {
		t.Errorf("delivered %q, want %q", whole, want)
	}
}

// TestFlapListener pins the outage fault: connections landing in a down
// window are dropped (dial succeeds, then immediate close), up windows pass
// traffic, and every drop is recorded as a FaultOutage at its accept index.
func TestFlapListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Accepts 1 and 2 land in the outage window.
	flap := NewFlapListener(ln, func(i int) bool { return i == 1 || i == 2 })
	served := make(chan struct{})
	go func() {
		defer close(served)
		for {
			c, err := flap.Accept()
			if err != nil {
				return
			}
			c.Write([]byte("ok"))
			c.Close()
		}
	}()
	dial := func() (string, error) {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 2)
		n, err := io.ReadFull(c, buf)
		return string(buf[:n]), err
	}
	for i := 0; i < 4; i++ {
		got, err := dial()
		if down := i == 1 || i == 2; down {
			if err == nil {
				t.Errorf("dial %d: served %q during outage window", i, got)
			}
		} else if err != nil || got != "ok" {
			t.Errorf("dial %d: got %q, %v; want ok", i, got, err)
		}
	}
	drops := flap.Drops()
	if len(drops) != 2 || flap.Accepts() != 4 {
		t.Fatalf("drops = %v, accepts = %d; want 2 drops of 4 accepts", drops, flap.Accepts())
	}
	for i, f := range drops {
		if f.Kind != FaultOutage || f.Offset != int64(i+1) {
			t.Errorf("drop %d = %v, want outage at accept %d", i, f, i+1)
		}
	}
	if s := drops[0].String(); !strings.Contains(s, "outage") {
		t.Errorf("outage fault renders as %q", s)
	}
	ln.Close()
	<-served
}

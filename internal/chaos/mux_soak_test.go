package chaos_test

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"websnap/internal/chaos"
	"websnap/internal/client"
	"websnap/internal/edge"
	"websnap/internal/mlapp"
	"websnap/internal/models"
	"websnap/internal/nn"
	"websnap/internal/obs"
	"websnap/internal/testutil"
	"websnap/internal/webapp"
)

// The mux soak drives many concurrent offload sessions over ONE shared
// client.Conn in multiplexed mode (HintMuxV1): every session is a logical
// stream interleaved on the same TCP connection. The invariants are the
// serial soak's, plus the multiplexing claims themselves:
//
//  1. Every event terminates with a result bit-identical to local
//     execution, no matter how streams interleave on the wire.
//  2. Exactly one audit decision per offload-eligible event.
//  3. The clean variant really does use a single TCP connection for all
//     sessions, and the server really does dispatch the requests as
//     multiplexed streams (MuxRequests > 0).
//  4. No goroutine leaks after the shared Conn closes (the reader
//     goroutine must join).

const muxSoakSessions = 64

// muxServer is soakServer scaled for 64 concurrent streams: queue depth
// beyond the stream count, so admission rejections don't dominate, while
// workers stay scarce enough that batching and contention are real.
func muxServer(t *testing.T) (*edge.Server, string) {
	t.Helper()
	srv, err := edge.NewServer(edge.Config{
		Catalog:         muxCatalog(t),
		Installed:       true,
		Workers:         4,
		QueueDepth:      2 * muxSoakSessions,
		MaxBatch:        8,
		IdleTimeout:     10 * time.Second,
		TransferTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return srv, ln.Addr().String()
}

func muxCatalog(t *testing.T) *webapp.Catalog {
	t.Helper()
	cat := webapp.NewCatalog()
	if err := cat.Add(mlapp.FullRegistry()); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(mlapp.PartialRegistry()); err != nil {
		t.Fatal(err)
	}
	return cat
}

// runMuxSession drives one logical stream (its own app, offloader, and
// auditor) over the shared multiplexed conn. start synchronizes all
// sessions so the streams genuinely interleave.
func runMuxSession(idx int, conn *client.Conn, model *nn.Network,
	want *soakRefs, start <-chan struct{}) *sessionReport {
	rep := &sessionReport{seed: int64(idx)}
	kind := sessionKind(idx % int(numKinds))
	appID := fmt.Sprintf("mux-%s-%d", kind, idx)
	auditor := obs.NewAuditor(obs.AuditorOptions{})
	opts := client.Options{
		LocalFallback: true,
		Audit:         auditor,
		Compress:      idx%2 == 0,
	}
	var app *webapp.App
	var err error
	switch kind {
	case kindPartial:
		app, err = mlapp.NewPartialApp(appID, "tiny", model, soakSplitIndex, tinyLabels)
		if err == nil {
			rear, ok := app.Model("tiny" + mlapp.RearSuffix)
			if !ok {
				rep.failf("mux session %d (%s): rear model missing", idx, kind)
				return rep
			}
			opts.OffloadEventTypes = []string{mlapp.EventFrontComplete}
			opts.Models = []client.ModelToSend{{Name: "tiny" + mlapp.RearSuffix, Net: rear, Partial: true}}
			opts.ExcludeModels = []string{"tiny" + mlapp.FrontSuffix}
			opts.AuditPath = obs.PathPartial
		}
	default:
		app, err = mlapp.NewFullApp(appID, "tiny", model, tinyLabels)
		opts.OffloadEventTypes = []string{mlapp.EventClick}
		opts.Models = []client.ModelToSend{{Name: "tiny", Net: model}}
		opts.EnableDelta = kind == kindDelta
	}
	if err != nil {
		rep.failf("mux session %d (%s): build app: %v", idx, kind, err)
		return rep
	}
	off, err := client.NewOffloader(app, conn, opts)
	if err != nil {
		rep.failf("mux session %d (%s): offloader: %v", idx, kind, err)
		return rep
	}
	<-start
	off.StartPreSend()
	_ = off.WaitForAcks() //nolint:errcheck // faults may fail the pre-send; invariants below decide

	for e := 0; e < soakEventsPerSession; e++ {
		imgSeed := uint64(e + 1)
		if err := mlapp.LoadImage(app, mlapp.SyntheticImage(soakImageVolume, imgSeed)); err != nil {
			rep.failf("mux session %d (%s) event %d: load: %v", idx, kind, e, err)
			return rep
		}
		app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
		if _, err := off.Run(20); err != nil {
			rep.failf("mux session %d (%s) event %d: run: %v", idx, kind, e, err)
			continue
		}
		if got := mlapp.Result(app); got != want.text[imgSeed] {
			rep.failf("mux session %d (%s) event %d: result %q, want %q (bit-identical to local)",
				idx, kind, e, got, want.text[imgSeed])
		}
	}

	st := off.Stats()
	rep.offloads = st.Offloads
	if total := auditor.Total(); total != soakEventsPerSession {
		rep.failf("mux session %d (%s): %d audit decisions for %d offload-eligible events",
			idx, kind, total, soakEventsPerSession)
	}
	mix := make(map[obs.DecisionPath]int64)
	for _, pc := range auditor.Summary().Mix {
		mix[pc.Path] = pc.Count
	}
	if n := mix[obs.PathError]; n != 0 {
		rep.failf("mux session %d (%s): %d error-path decisions despite LocalFallback", idx, kind, n)
	}
	if got := mix[obs.PathFull] + mix[obs.PathPartial]; got != int64(st.Offloads) {
		rep.failf("mux session %d (%s): audit records %d offload decisions, stats say %d",
			idx, kind, got, st.Offloads)
	}
	return rep
}

// muxSoak runs all sessions concurrently over one shared conn and collects
// failures.
func muxSoak(t *testing.T, conn *client.Conn, model *nn.Network, want *soakRefs) (reports []*sessionReport) {
	t.Helper()
	reports = make([]*sessionReport, muxSoakSessions)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < muxSoakSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i] = runMuxSession(i, conn, model, want, start)
		}(i)
	}
	close(start)
	wg.Wait()
	return reports
}

// TestMuxSoakInvariants runs 64 concurrent logical streams over a single
// clean TCP connection and checks every invariant plus the single-connection
// claim itself.
func TestMuxSoakInvariants(t *testing.T) {
	testutil.CheckGoroutines(t, 5*time.Second)
	testutil.CheckPoolBalance(t, 8192)

	model, err := models.BuildTinyNet("tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	want := localExpected(t, model, []uint64{1, 2, 3})
	srv, addr := muxServer(t)

	var dials atomic.Int64
	conn, err := client.DialWrapped(addr, func(c net.Conn) net.Conn {
		dials.Add(1)
		return c
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetRequestTimeout(10 * time.Second)
	ok, err := conn.NegotiateMux(2 * muxSoakSessions)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("server refused mux negotiation")
	}

	reports := muxSoak(t, conn, model, want)

	var failures []string
	clientOffloads := int64(0)
	for _, rep := range reports {
		failures = append(failures, rep.failures...)
		clientOffloads += int64(rep.offloads)
	}
	const maxPrint = 20
	for i, f := range failures {
		if i == maxPrint {
			t.Errorf("... and %d more failures", len(failures)-maxPrint)
			break
		}
		t.Error(f)
	}

	// The multiplexing claims: all sessions shared one TCP connection, the
	// server dispatched their requests as concurrent streams, and with no
	// faults every offload-eligible event actually offloaded.
	if n := dials.Load(); n != 1 {
		t.Errorf("%d TCP connections dialed for %d sessions; mux should need exactly 1", n, muxSoakSessions)
	}
	m := srv.Metrics()
	if m.MuxRequests == 0 {
		t.Error("server saw no multiplexed requests; streams fell back to serial dispatch")
	}
	if clientOffloads == 0 {
		t.Error("no offload succeeded over the multiplexed connection")
	}
	if m.SnapshotsExecuted+m.DeltasExecuted < clientOffloads {
		t.Errorf("server executed %d offloads, clients observed %d successes",
			m.SnapshotsExecuted+m.DeltasExecuted, clientOffloads)
	}
	t.Logf("mux soak: %d sessions over 1 conn, %d offloads, %d mux requests",
		muxSoakSessions, clientOffloads, m.MuxRequests)
}

// TestMuxSoakUnderChaos re-runs the multiplexed soak behind a seeded fault
// injector: frame corruption and stalls now hit a connection shared by all
// streams, so one fault unwinds many sessions at once — results must still
// be bit-identical to local execution and audit decisions exactly-once,
// with redials healing the shared connection in place.
func TestMuxSoakUnderChaos(t *testing.T) {
	testutil.CheckGoroutines(t, 5*time.Second)
	testutil.CheckPoolBalance(t, 8192)

	model, err := models.BuildTinyNet("tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	want := localExpected(t, model, []uint64{1, 2, 3})
	srv, addr := muxServer(t)

	seed := sessionSeed(soakBaseSeed(), 101)
	in := chaos.New(seed, chaos.Options{})
	conn, err := client.DialWrapped(addr, in.WrapConn)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetRequestTimeout(soakTimeout)

	// Negotiation itself runs under fault injection; a torn probe breaks
	// the conn, which Redial heals for the next attempt.
	negotiated := false
	for attempt := 0; attempt < 10 && !negotiated; attempt++ {
		ok, err := conn.NegotiateMux(2 * muxSoakSessions)
		if err != nil {
			_ = conn.Redial() //nolint:errcheck // retried next attempt
			continue
		}
		if !ok {
			t.Fatal("server refused mux negotiation")
		}
		negotiated = true
	}
	if !negotiated {
		t.Fatalf("mux negotiation never succeeded under chaos — %s", testutil.Seed(seed))
	}

	reports := muxSoak(t, conn, model, want)

	var failures []string
	clientOffloads := int64(0)
	for _, rep := range reports {
		failures = append(failures, rep.failures...)
		clientOffloads += int64(rep.offloads)
	}
	const maxPrint = 20
	for i, f := range failures {
		if i == maxPrint {
			t.Errorf("... and %d more failures — %s", len(failures)-maxPrint, testutil.Seed(seed))
			break
		}
		t.Error(f)
	}
	m := srv.Metrics()
	if m.SnapshotsExecuted+m.DeltasExecuted < clientOffloads {
		t.Errorf("server executed %d offloads, clients observed %d successes — %s",
			m.SnapshotsExecuted+m.DeltasExecuted, clientOffloads, testutil.Seed(seed))
	}
	t.Logf("mux chaos soak: %d sessions, %d offloads, %d mux requests, %d plans — %s",
		muxSoakSessions, clientOffloads, m.MuxRequests, len(in.Plans()), testutil.Seed(seed))
}

// TestBoundedStoreSoak pins the memory bound under sustained multiplexed
// load: with a byte cap on the session store, many sessions' states churn
// through LRU eviction and the store's byte charge never exceeds the cap
// at any sampled instant.
func TestBoundedStoreSoak(t *testing.T) {
	testutil.CheckGoroutines(t, 5*time.Second)

	model, err := models.BuildTinyNet("tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	want := localExpected(t, model, []uint64{1, 2, 3})

	// Room for a few models/states, far less than 64 sessions produce.
	capBytes := 4 * model.ModelBytes()
	srv, err := edge.NewServer(edge.Config{
		Catalog:         muxCatalog(t),
		Installed:       true,
		Workers:         4,
		QueueDepth:      2 * muxSoakSessions,
		MaxBatch:        8,
		MaxStoreBytes:   capBytes,
		IdleTimeout:     10 * time.Second,
		TransferTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		<-serveDone
	})

	// Sample the store's byte charge continuously while the soak runs.
	var maxSeen atomic.Int64
	sampleStop := make(chan struct{})
	sampleDone := make(chan struct{})
	go func() {
		defer close(sampleDone)
		for {
			select {
			case <-sampleStop:
				return
			default:
			}
			if b := srv.Metrics().StoreBytes; b > maxSeen.Load() {
				maxSeen.Store(b)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	conn, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetRequestTimeout(10 * time.Second)
	if ok, err := conn.NegotiateMux(2 * muxSoakSessions); err != nil || !ok {
		t.Fatalf("negotiate: ok=%v err=%v", ok, err)
	}
	reports := muxSoak(t, conn, model, want)
	close(sampleStop)
	<-sampleDone

	for _, rep := range reports {
		for _, f := range rep.failures {
			t.Error(f)
		}
	}
	m := srv.Metrics()
	if m.StoreEvictions == 0 {
		t.Fatalf("%d sessions through a %d-byte store evicted nothing; the bound is untested",
			muxSoakSessions, capBytes)
	}
	if peak := maxSeen.Load(); peak > capBytes {
		t.Errorf("store byte charge peaked at %d, cap %d", peak, capBytes)
	}
	if m.StoreBytes > capBytes {
		t.Errorf("final store bytes %d exceed cap %d", m.StoreBytes, capBytes)
	}
	t.Logf("bounded soak: peak %d / cap %d bytes, %d evictions",
		maxSeen.Load(), capBytes, m.StoreEvictions)
}

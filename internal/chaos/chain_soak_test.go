package chaos_test

// Mid-chain chaos soak for pipeline-parallel partial inference. A client
// drives the K-way chain executor against a small edge fleet while the
// chaos injector mangles both the client's connections and every server's
// hop-to-hop relay dials, and a mid-chain server is killed outright
// halfway through. Invariants, per event:
//
//   - the returned result is bit-identical to local execution, whatever
//     path (full chain, re-planned shorter chain, or local fallback) the
//     request took — a wrong or duplicated result is a hard failure;
//   - exactly one audit decision is recorded per event;
//   - after the hop death, the executor re-plans or falls back — the dead
//     server never appears in a successful manifest, and re-plans are
//     captured by the flight recorder;
//   - successful chain spans stay correctly parented: hop N's chain_exec
//     span nests hop N+1's, with addresses matching the manifest.
//
// Every failure message carries the soak seed for replay.

import (
	"net"
	"sync"
	"testing"
	"time"

	"websnap/internal/chaos"
	"websnap/internal/client"
	"websnap/internal/core"
	"websnap/internal/edge"
	"websnap/internal/models"
	"websnap/internal/nn"
	"websnap/internal/obs"
	"websnap/internal/protocol"
	"websnap/internal/roam"
	"websnap/internal/telemetry"
	"websnap/internal/tensor"
)

// startChainSoakServer runs a chain-capable edge server whose relay dials
// pass through the chaos injector.
func startChainSoakServer(t *testing.T, inj *chaos.Injector) (addr string, shutdown func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cat, err := core.DefaultCatalog()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := edge.NewServer(edge.Config{
		Catalog:       cat,
		Installed:     true,
		AdvertiseAddr: ln.Addr().String(),
		Workers:       2,
		QueueDepth:    8,
		// Same regime as the other soak servers: without deadlines, a
		// corrupted length prefix wedges a server read forever and hangs
		// shutdown.
		IdleTimeout:     10 * time.Second,
		TransferTimeout: 2 * time.Second,
		PeerDial: func(peer string, timeout time.Duration) (net.Conn, error) {
			c, err := net.DialTimeout("tcp", peer, timeout)
			if err != nil {
				return nil, err
			}
			return inj.WrapConn(c), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	var once sync.Once
	return ln.Addr().String(), func() {
		once.Do(func() {
			srv.Close()
			<-done
		})
	}
}

// chainSoakInput builds the deterministic soak input for the model.
func chainSoakInput(t *testing.T, model *nn.Network) *tensor.Tensor {
	t.Helper()
	in, err := tensor.New(model.InputShape()...)
	if err != nil {
		t.Fatal(err)
	}
	data := in.Data()
	s := uint64(soakBaseSeed())
	for i := range data {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		data[i] = float32(s%100000)/10000 - 1
	}
	return in
}

// assertChainSpanParenting walks the merged span tree and requires one
// correctly-addressed chain_exec level per manifest hop.
func assertChainSpanParenting(t *testing.T, seed int64, event int, hops []protocol.ChainHop, span *protocol.SpanNode) {
	t.Helper()
	for i, hop := range hops {
		if span == nil {
			t.Fatalf("seed %d event %d: no span for hop %d of %v", seed, event, i+1, hops)
		}
		if span.Op != "chain_exec" {
			t.Fatalf("seed %d event %d: hop %d span op %q", seed, event, i+1, span.Op)
		}
		if span.Addr != hop.Addr {
			t.Fatalf("seed %d event %d: hop %d span addr %q, want %q", seed, event, i+1, span.Addr, hop.Addr)
		}
		var next *protocol.SpanNode
		for _, c := range span.Children {
			if c.Op == "chain_exec" {
				next = c
			}
		}
		span = next
	}
	if span != nil {
		t.Fatalf("seed %d event %d: extra chain_exec span beyond %d hops", seed, event, len(hops))
	}
}

// TestChainSoakMidHopDeath is the chain protocol's chaos soak: connection
// faults everywhere, plus a deliberate mid-chain server kill halfway in.
func TestChainSoakMidHopDeath(t *testing.T) {
	seed := soakBaseSeed()
	events := 40
	if testing.Short() {
		events = 10
	}
	t.Logf("chain soak: %d events, seed %d (override with SOAK_SEED)", events, seed)

	inj := chaos.New(seed, chaos.Options{
		// Refusal would just retry-loop the executor's dials; connection
		// faults are the interesting failure mode here.
		RefuseProb: -1,
	})
	var addrs []string
	var shutdowns []func()
	for i := 0; i < 4; i++ {
		addr, shutdown := startChainSoakServer(t, inj)
		t.Cleanup(shutdown)
		addrs = append(addrs, addr)
		shutdowns = append(shutdowns, shutdown)
	}
	deadAddr := addrs[1]

	model, err := models.BuildTinyNet("chain-soak", 3)
	if err != nil {
		t.Fatal(err)
	}
	in := chainSoakInput(t, model)
	want, err := model.Forward(in)
	if err != nil {
		t.Fatal(err)
	}

	audit := obs.NewAuditor(obs.AuditorOptions{Keep: events})
	flight := telemetry.NewFlightRecorder(0)
	ex, err := roam.NewChainExecutor(roam.ChainConfig{
		AppID:     "chain-soak",
		ModelName: model.Name(),
		Model:     model,
		Depth:     3,
		Candidates: func() []roam.ChainServer {
			out := make([]roam.ChainServer, len(addrs))
			for i, a := range addrs {
				out[i] = roam.ChainServer{Addr: a}
			}
			return out
		},
		Dial: func(addr string) (*client.Conn, error) {
			return client.DialWrapped(addr, inj.WrapConn)
		},
		Auditor: audit,
		Flight:  flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()

	pathCounts := map[obs.DecisionPath]int{}
	postKillChains := 0
	for event := 0; event < events; event++ {
		if event == events/2 {
			// Mid-chain hop death: the candidate list keeps advertising
			// the dead address, so every subsequent plan must discover
			// the failure and re-plan around it.
			shutdowns[1]()
		}
		out, report, err := ex.Execute(in)
		if err != nil {
			t.Fatalf("seed %d event %d: execute: %v", seed, event, err)
		}
		pathCounts[report.Path]++
		if !tensor.SameShape(out, want) {
			t.Fatalf("seed %d event %d: output shape %v != local %v", seed, event, out.Shape(), want.Shape())
		}
		got, exp := out.Data(), want.Data()
		for i := range exp {
			if got[i] != exp[i] {
				t.Fatalf("seed %d event %d (path %s): output diverges at %d: %v != %v",
					seed, event, report.Path, i, got[i], exp[i])
			}
		}
		if report.Path == obs.PathChain {
			for _, h := range report.Hops {
				if event > events/2 && h.Addr == deadAddr {
					t.Fatalf("seed %d event %d: dead hop %s in successful manifest %v",
						seed, event, deadAddr, report.Hops)
				}
			}
			assertChainSpanParenting(t, seed, event, report.Hops, report.Span)
			if event >= events/2 {
				postKillChains++
			}
		}
	}

	sum := audit.Summary()
	if sum.Total != int64(events) {
		t.Fatalf("seed %d: %d audit decisions for %d events (want exactly one each): %+v",
			seed, sum.Total, events, sum.Mix)
	}
	if ex.Replans() == 0 {
		t.Fatalf("seed %d: hop death never triggered a re-plan (paths %v)", seed, pathCounts)
	}
	replanCaptures := 0
	for _, e := range flight.Dump() {
		if e.Reason == telemetry.FlightReplan {
			replanCaptures++
		}
	}
	if replanCaptures == 0 {
		t.Fatalf("seed %d: re-plans happened but none were captured in the flight recorder", seed)
	}
	if postKillChains == 0 {
		t.Fatalf("seed %d: no successful chain execution after the hop death (paths %v)", seed, pathCounts)
	}
	t.Logf("chain soak: paths %v, executor re-plans %d, flight captures %d", pathCounts, ex.Replans(), replanCaptures)
}

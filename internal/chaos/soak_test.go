package chaos_test

import (
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"websnap/internal/chaos"
	"websnap/internal/client"
	"websnap/internal/edge"
	"websnap/internal/mlapp"
	"websnap/internal/models"
	"websnap/internal/nn"
	"websnap/internal/obs"
	"websnap/internal/testutil"
	"websnap/internal/webapp"
)

// The soak drives many concurrent client↔edge offload sessions — full,
// partial, and delta snapshot paths — each behind its own seeded fault
// injector, and asserts system-wide invariants:
//
//  1. Every offload-eligible event terminates with a result bit-identical
//     to local execution (LocalFallback is on, so faults may change WHERE
//     the handler ran, never WHAT it computed).
//  2. Exactly one audit decision per offload-eligible event, and the
//     decision mix reconciles with the offloader's counters.
//  3. No corrupted snapshot or frame is accepted: a single flipped bit
//     either fails a decoder or a checksum — it never yields a wrong
//     result (covered by invariant 1, since the injectors corrupt both
//     directions).
//  4. Server execution counters reconcile with client-observed successes.
//  5. No goroutine or pooled-buffer leaks survive shutdown.
//
// Every failure message carries the session's replay seed; the fault plan
// sequence is a pure function of that seed (chaos.TestSeedDeterminism and
// TestSoakSeedScheduleReplay pin this), so a failing session's exact fault
// schedule is reproducible from its seed alone.

const (
	soakEventsPerSession = 3
	soakImageVolume      = 3 * 16 * 16
	soakSplitIndex       = 3
	soakTimeout          = 800 * time.Millisecond
)

// soakBaseSeed is fixed so CI runs a stable seed set; SOAK_SEED overrides
// it for exploration (and for replaying a failure from another machine).
func soakBaseSeed() int64 {
	if v := os.Getenv("SOAK_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return 20260806
}

// sessionSeed derives session i's injector seed from the base seed via a
// splitmix-style mix, so sessions are decorrelated but individually
// replayable.
func sessionSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// soakServer starts an installed edge server sized to see real contention
// and batching under the soak's concurrency.
func soakServer(t *testing.T) (*edge.Server, string) {
	t.Helper()
	cat := webapp.NewCatalog()
	if err := cat.Add(mlapp.FullRegistry()); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(mlapp.PartialRegistry()); err != nil {
		t.Fatal(err)
	}
	srv, err := edge.NewServer(edge.Config{
		Catalog:         cat,
		Installed:       true,
		Workers:         3,
		QueueDepth:      8,
		MaxBatch:        4,
		IdleTimeout:     10 * time.Second,
		TransferTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return srv, ln.Addr().String()
}

// soakRefs is the locally-computed ground truth every session's results
// are checked against: float32 result text and scores per image seed,
// plus the int8 plan's calibrated end-to-end error bound for quantized
// sessions.
type soakRefs struct {
	text   map[uint64]string
	scores map[uint64][]float32
	// qBound is the calibrated error bound of the model's int8 plan: a
	// quantized session's scores must land within it of the float32
	// reference, but are NOT expected to be bit-identical to it.
	qBound float32
}

// localExpected computes the reference results entirely locally: mlapp's
// result text depends only on (image, model), so one local run per image
// seed is the ground truth for every session and kind.
func localExpected(t *testing.T, model *nn.Network, seeds []uint64) *soakRefs {
	t.Helper()
	refs := &soakRefs{
		text:   make(map[uint64]string, len(seeds)),
		scores: make(map[uint64][]float32, len(seeds)),
	}
	for _, s := range seeds {
		app, err := mlapp.NewFullApp("soak-ref", "tiny", model, tinyLabels)
		if err != nil {
			t.Fatal(err)
		}
		if err := mlapp.LoadImage(app, mlapp.SyntheticImage(soakImageVolume, s)); err != nil {
			t.Fatal(err)
		}
		app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
		if _, err := app.Run(10); err != nil {
			t.Fatal(err)
		}
		if refs.text[s] = mlapp.Result(app); refs.text[s] == "" {
			t.Fatalf("local reference for image seed %d produced no result", s)
		}
		sv, ok := app.Global(mlapp.GlobalScores)
		if !ok {
			t.Fatalf("local reference for image seed %d published no scores", s)
		}
		refs.scores[s] = append([]float32(nil), sv.(webapp.Float32Array)...)
	}
	qplan, err := model.PlanPrec(nn.PrecInt8, model.InputShape()...)
	if err != nil {
		t.Fatalf("compile int8 reference plan: %v", err)
	}
	refs.qBound = qplan.Quant().ErrBound
	return refs
}

var tinyLabels = []string{"cat", "dog", "bird"}

type sessionKind int

const (
	kindFull sessionKind = iota
	kindPartial
	kindDelta
	// kindQuant is a full-offload session running at the int8 quality
	// tier: the quality global rides its snapshots, so the server (or the
	// local fallback) executes the calibrated quantized kernels.
	kindQuant
	numKinds
)

func (k sessionKind) String() string {
	return [...]string{"full", "partial", "delta", "quant"}[k]
}

// sessionReport is one soak session's outcome.
type sessionReport struct {
	seed     int64
	plans    []chaos.Plan
	failures []string
	// offloads is the client-observed count of successful offload round
	// trips (for reconciliation against server execution counters).
	offloads int
}

func (r *sessionReport) failf(format string, args ...any) {
	r.failures = append(r.failures, fmt.Sprintf(format, args...)+" — "+testutil.Seed(r.seed))
}

// runSoakSession drives one complete client session under fault injection
// and checks the per-session invariants.
func runSoakSession(idx int, kind sessionKind, seed int64, addr string,
	model *nn.Network, want *soakRefs) *sessionReport {
	rep := &sessionReport{seed: seed}
	in := chaos.New(seed, chaos.Options{})
	defer func() { rep.plans = in.Plans() }()

	conn, err := client.DialWrapped(addr, in.WrapConn)
	if err != nil {
		rep.failf("session %d (%s): dial: %v", idx, kind, err)
		return rep
	}
	defer conn.Close()
	conn.SetRequestTimeout(soakTimeout)

	appID := fmt.Sprintf("soak-%s-%d", kind, idx)
	auditor := obs.NewAuditor(obs.AuditorOptions{})
	opts := client.Options{
		LocalFallback: true,
		Audit:         auditor,
		Compress:      idx%2 == 0,
	}
	var app *webapp.App
	switch kind {
	case kindPartial:
		app, err = mlapp.NewPartialApp(appID, "tiny", model, soakSplitIndex, tinyLabels)
		if err == nil {
			rear, ok := app.Model("tiny" + mlapp.RearSuffix)
			if !ok {
				rep.failf("session %d (%s): rear model missing", idx, kind)
				return rep
			}
			opts.OffloadEventTypes = []string{mlapp.EventFrontComplete}
			opts.Models = []client.ModelToSend{{Name: "tiny" + mlapp.RearSuffix, Net: rear, Partial: true}}
			opts.ExcludeModels = []string{"tiny" + mlapp.FrontSuffix}
			opts.AuditPath = obs.PathPartial
		}
	default:
		app, err = mlapp.NewFullApp(appID, "tiny", model, tinyLabels)
		opts.OffloadEventTypes = []string{mlapp.EventClick}
		opts.Models = []client.ModelToSend{{Name: "tiny", Net: model}}
		opts.EnableDelta = kind == kindDelta
		if err == nil && kind == kindQuant {
			// The quality tier is an ordinary global set before the first
			// event, so every snapshot this session offloads carries it.
			err = mlapp.SetQuality(app, nn.PrecInt8)
		}
	}
	if err != nil {
		rep.failf("session %d (%s): build app: %v", idx, kind, err)
		return rep
	}
	off, err := client.NewOffloader(app, conn, opts)
	if err != nil {
		rep.failf("session %d (%s): offloader: %v", idx, kind, err)
		return rep
	}
	off.StartPreSend()
	// Pre-send may fail under injected faults; the offloader then ships
	// the model inline (or falls back locally), so the error is expected —
	// only the invariants below matter.
	_ = off.WaitForAcks() //nolint:errcheck

	// Invariant 1: every event ends with the locally-computed result.
	// Float32 sessions must be bit-identical to the local reference no
	// matter where the handler ran. Quantized sessions are held to the
	// int8 plan's calibrated error bound against the float32 reference —
	// within bound, not bit-identical: int8 may legitimately flip a
	// near-tie top-1, so the score vector is the checked artifact.
	for e := 0; e < soakEventsPerSession; e++ {
		imgSeed := uint64(e + 1)
		if err := mlapp.LoadImage(app, mlapp.SyntheticImage(soakImageVolume, imgSeed)); err != nil {
			rep.failf("session %d (%s) event %d: load: %v", idx, kind, e, err)
			return rep
		}
		app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
		if _, err := off.Run(20); err != nil {
			// With LocalFallback on, no fault may surface as an event
			// failure: the offloader must degrade to local execution.
			rep.failf("session %d (%s) event %d: run: %v", idx, kind, e, err)
			continue
		}
		if kind == kindQuant {
			if got := mlapp.Result(app); got == "" {
				rep.failf("session %d (%s) event %d: no result published", idx, kind, e)
				continue
			}
			sv, ok := app.Global(mlapp.GlobalScores)
			if !ok {
				rep.failf("session %d (%s) event %d: no scores published", idx, kind, e)
				continue
			}
			scores, ref := sv.(webapp.Float32Array), want.scores[imgSeed]
			if len(scores) != len(ref) {
				rep.failf("session %d (%s) event %d: %d scores, want %d", idx, kind, e, len(scores), len(ref))
				continue
			}
			for i, v := range scores {
				d := v - ref[i]
				if d < 0 {
					d = -d
				}
				if d > want.qBound {
					rep.failf("session %d (%s) event %d: int8 score[%d]=%g vs float32 %g: |d|=%g exceeds calibrated bound %g",
						idx, kind, e, i, v, ref[i], d, want.qBound)
					break
				}
			}
			continue
		}
		if got := mlapp.Result(app); got != want.text[imgSeed] {
			rep.failf("session %d (%s) event %d: result %q, want %q (bit-identical to local)",
				idx, kind, e, got, want.text[imgSeed])
		}
	}

	// Invariant 2: exactly one audit decision per offload-eligible event,
	// and the mix reconciles with the offloader's own counters.
	st := off.Stats()
	rep.offloads = st.Offloads
	if total := auditor.Total(); total != soakEventsPerSession {
		rep.failf("session %d (%s): %d audit decisions for %d offload-eligible events",
			idx, kind, total, soakEventsPerSession)
	}
	mix := make(map[obs.DecisionPath]int64)
	for _, pc := range auditor.Summary().Mix {
		mix[pc.Path] = pc.Count
	}
	if n := mix[obs.PathError]; n != 0 {
		rep.failf("session %d (%s): %d error-path decisions despite LocalFallback", idx, kind, n)
	}
	if got := mix[obs.PathFull] + mix[obs.PathPartial]; got != int64(st.Offloads) {
		rep.failf("session %d (%s): audit records %d offload decisions, stats say %d",
			idx, kind, got, st.Offloads)
	}
	if got := mix[obs.PathFallback]; got != int64(st.LocalFallbacks) {
		rep.failf("session %d (%s): audit records %d fallbacks, stats say %d",
			idx, kind, got, st.LocalFallbacks)
	}
	if got := mix[obs.PathShed]; got != int64(st.LoadSheds) {
		rep.failf("session %d (%s): audit records %d sheds, stats say %d",
			idx, kind, got, st.LoadSheds)
	}
	return rep
}

// TestChaosSoakInvariants is the end-to-end invariant soak: ≥200 sessions
// in short mode, each under a randomized (but seed-replayable) fault
// schedule, spread over two shared edge servers.
func TestChaosSoakInvariants(t *testing.T) {
	testutil.CheckGoroutines(t, 5*time.Second)
	// Each app and server session retains pooled execution scratch; the
	// allowance covers the soak's apps without masking an unbounded leak.
	testutil.CheckPoolBalance(t, 8192)

	sessions := 240
	if !testing.Short() {
		sessions = 400
	}
	base := soakBaseSeed()
	t.Logf("soak: %d sessions, base seed %d (override with SOAK_SEED)", sessions, base)

	model, err := models.BuildTinyNet("tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	seeds := make([]uint64, soakEventsPerSession)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	want := localExpected(t, model, seeds)

	srvA, addrA := soakServer(t)
	srvB, addrB := soakServer(t)
	addrs := []string{addrA, addrB}

	const workers = 8
	reports := make([]*sessionReport, sessions)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				reports[i] = runSoakSession(i, sessionKind(i%int(numKinds)),
					sessionSeed(base, i), addrs[i%len(addrs)], model, want)
			}
		}()
	}
	for i := 0; i < sessions; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	var failures []string
	clientOffloads := int64(0)
	faulted := 0
	for _, rep := range reports {
		failures = append(failures, rep.failures...)
		clientOffloads += int64(rep.offloads)
		for _, p := range rep.plans {
			if len(p.Faults) > 0 || len(p.Phases) > 0 {
				faulted++
				break
			}
		}
	}
	const maxPrint = 20
	for i, f := range failures {
		if i == maxPrint {
			t.Errorf("... and %d more failures", len(failures)-maxPrint)
			break
		}
		t.Error(f)
	}

	// Sanity: the soak must actually have injected faults, or every
	// invariant passes vacuously.
	if faulted < sessions/2 {
		t.Errorf("only %d/%d sessions had fault plans; injector misconfigured", faulted, sessions)
	}

	// Invariant 4: servers never executed fewer sessions than clients saw
	// succeed (a response can be lost after execution, never the reverse).
	executed := int64(0)
	for _, srv := range []*edge.Server{srvA, srvB} {
		m := srv.Metrics()
		executed += m.SnapshotsExecuted + m.DeltasExecuted
	}
	if executed < clientOffloads {
		t.Errorf("servers executed %d offloads, clients observed %d successes — results out of thin air",
			executed, clientOffloads)
	}
	t.Logf("soak: %d/%d sessions faulted, %d client-successful offloads, %d server executions",
		faulted, sessions, clientOffloads, executed)
}

// TestSoakSeedScheduleReplay pins the replay contract at the soak level:
// re-running a session's injector from its seed alone reproduces the
// identical fault schedule, connection by connection.
func TestSoakSeedScheduleReplay(t *testing.T) {
	testutil.LeakCheck(t)
	model, err := models.BuildTinyNet("tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	want := localExpected(t, model, []uint64{1, 2, 3})
	_, addr := soakServer(t)

	seed := sessionSeed(soakBaseSeed(), 7)
	a := runSoakSession(7, kindFull, seed, addr, model, want)
	b := runSoakSession(7, kindFull, seed, addr, model, want)
	if len(a.plans) == 0 || len(b.plans) == 0 {
		t.Fatal("sessions dialed no connections")
	}
	// Timing may change how many redials happen, but plan k is a pure
	// function of (seed, k): the shared prefix must match exactly.
	n := len(a.plans)
	if len(b.plans) < n {
		n = len(b.plans)
	}
	for i := 0; i < n; i++ {
		if a.plans[i].String() != b.plans[i].String() {
			t.Fatalf("plan %d diverged between replays of seed %d:\n  run A: %s\n  run B: %s",
				i, seed, a.plans[i], b.plans[i])
		}
	}
}

// TestSoakFailureMessagesCarrySeed pins that every invariant-violation
// message a session emits names its replay seed.
func TestSoakFailureMessagesCarrySeed(t *testing.T) {
	rep := &sessionReport{seed: 424242}
	rep.failf("synthetic failure %d", 1)
	if len(rep.failures) != 1 || !strings.Contains(rep.failures[0], "replay with seed 424242") {
		t.Fatalf("failure message %q lacks the replay seed", rep.failures)
	}
}

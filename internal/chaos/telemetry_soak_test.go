package chaos_test

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"websnap/internal/client"
	"websnap/internal/edge"
	"websnap/internal/fleet"
	"websnap/internal/mlapp"
	"websnap/internal/models"
	"websnap/internal/protocol"
	"websnap/internal/telemetry"
	"websnap/internal/testutil"
	"websnap/internal/webapp"
)

// The telemetry soak hammers the fleet trace plane and asserts its two
// standing invariants under -race:
//
//  1. Span parentage: every fleet-hop span a traced handoff produces
//     (registry_rpc, registry_locate, peer_fetch, blob_serve) appears
//     strictly BELOW the client's request root in one tree — never as an
//     orphan — and all of one handoff's entries share one 16-hex trace ID.
//  2. Flight ring byte cap: client- and server-side flight recorders never
//     exceed their configured byte cap at any sampled instant, even while
//     many goroutines record concurrently and the SLO path deposits slow
//     entries on every request.
//
// On failure the recorders' /debug/flight dumps are written under
// testdata/ so CI uploads them as artifacts next to failing soak seeds.

// dumpFlightOnFailure writes a flight recorder's JSON dump to testdata/
// when the test has failed, for the CI failure-artifact upload.
func dumpFlightOnFailure(t *testing.T, name string, f *telemetry.FlightRecorder) {
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		dir := filepath.Join("testdata", "flight")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("flight dump: %v", err)
			return
		}
		data, err := json.MarshalIndent(f.Dump(), "", "  ")
		if err != nil {
			t.Logf("flight dump: %v", err)
			return
		}
		path := filepath.Join(dir, t.Name()+"-"+name+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Logf("flight dump: %v", err)
			return
		}
		t.Logf("flight dump written to %s", path)
	})
}

// telemetrySoakRegistry starts a wire registry for the telemetry soak.
func telemetrySoakRegistry(t *testing.T) string {
	t.Helper()
	srv := fleet.NewRegistryServer(fleet.NewRegistry(fleet.RegistryOptions{TTL: 2 * time.Second}), nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return ln.Addr().String()
}

// telemetrySoakEdge starts a fleet-enabled edge server with an
// aggressively tight SLO (every request deposits a slow flight entry) and
// a small flight ring, so the soak exercises cap-bounded concurrent
// recording on the server side too.
func telemetrySoakEdge(t *testing.T, registryAddr string, flightCap int64) (*edge.Server, string, *telemetry.FlightRecorder) {
	t.Helper()
	cat := webapp.NewCatalog()
	if err := cat.Add(mlapp.FullRegistry()); err != nil {
		t.Fatal(err)
	}
	flight := telemetry.NewFlightRecorder(flightCap)
	slo, err := telemetry.NewSLO(telemetry.SLOConfig{Name: "soak", Objective: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	rc := fleet.NewRegistryClient(registryAddr, fleet.ClientOptions{})
	srv, err := edge.NewServer(edge.Config{
		Catalog:       cat,
		Installed:     true,
		Workers:       2,
		AdvertiseAddr: addr,
		Blobs:         fleet.NewBlobStore(),
		Locator:       rc,
		SLO:           slo,
		Flight:        flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	agent, err := fleet.StartAgent(fleet.AgentConfig{
		Client:   rc,
		Addr:     addr,
		Capacity: 2,
		TTL:      2 * time.Second,
		Interval: 20 * time.Millisecond,
		Load:     srv.LoadHint,
		Blobs:    srv.BlobKeys,
		Stats:    srv.StatsDigest,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		agent.Close()
		srv.Close()
		<-done
	})
	return srv, addr, flight
}

// fleetHopOps are the span operations that cross process boundaries; the
// parentage invariant requires each to sit strictly below a client root.
var fleetHopOps = map[string]bool{
	"presend_resolve": true,
	"registry_rpc":    true,
	"registry_locate": true,
	"peer_fetch":      true,
	"blob_serve":      true,
}

// checkSpanParentage asserts invariant 1 on one handoff tree.
func checkSpanParentage(t *testing.T, session int, root *protocol.SpanNode) {
	t.Helper()
	if root == nil {
		t.Errorf("session %d: handoff produced no span tree", session)
		return
	}
	if root.Op != "handoff_presend" || root.Addr != "client" {
		t.Errorf("session %d: tree root = %s@%s, want handoff_presend@client", session, root.Op, root.Addr)
	}
	if fleetHopOps[root.Op] {
		t.Errorf("session %d: fleet-hop span %s is the root, not parented under the request", session, root.Op)
	}
	seen := map[string]int{}
	root.Walk(func(n *protocol.SpanNode) {
		if n != root && !fleetHopOps[n.Op] && n.Op != "handoff_presend" {
			t.Errorf("session %d: unknown span op %q in handoff tree", session, n.Op)
		}
		if n != root {
			seen[n.Op]++
		}
	})
	// The resolve hop is always below the root; the registry/peer hops
	// appear whenever the new server had to go to the fleet (they may be
	// absent on a warm ref hit, which is not a parentage violation).
	if seen["presend_resolve"] == 0 {
		t.Errorf("session %d: no presend_resolve below the client root (spans: %v)", session, seen)
	}
}

// TestTelemetrySoakInvariants drives many telemetry-enabled sessions
// through an A→B handoff each while hammering a shared client flight ring
// from concurrent recorders, then checks both invariants.
func TestTelemetrySoakInvariants(t *testing.T) {
	testutil.LeakCheck(t)
	regAddr := telemetrySoakRegistry(t)
	srvA, addrA, flightA := telemetrySoakEdge(t, regAddr, 8<<10)
	_, addrB, flightB := telemetrySoakEdge(t, regAddr, 8<<10)

	// A small shared client ring under heavy concurrent recording: the
	// byte cap must hold at every sampled instant.
	clientFlight := telemetry.NewFlightRecorder(4 << 10)
	dumpFlightOnFailure(t, "client", clientFlight)
	dumpFlightOnFailure(t, "server-a", flightA)
	dumpFlightOnFailure(t, "server-b", flightB)

	model, err := models.BuildTinyNet("tiny", 3)
	if err != nil {
		t.Fatal(err)
	}

	sessions := 8
	if testing.Short() {
		sessions = 4
	}
	stop := make(chan struct{})
	var hammer sync.WaitGroup
	// Concurrent cap watcher + background recorders on the shared ring.
	for g := 0; g < 4; g++ {
		hammer.Add(1)
		go func(g int) {
			defer hammer.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				clientFlight.Record(telemetry.FlightEntry{
					Reason: telemetry.FlightSlow,
					Note:   fmt.Sprintf("hammer %d-%d", g, i),
				})
				if got, cap := clientFlight.Bytes(), clientFlight.Cap(); got > cap {
					t.Errorf("client flight ring over cap: %d > %d", got, cap)
					return
				}
			}
		}(g)
	}

	// Sessions pause between their work on A and the A→B handoff until A's
	// heartbeat has indexed the model blob, so every handoff resolves by
	// reference deterministically.
	handoffReady := make(chan struct{})
	rc := fleet.NewRegistryClient(regAddr, fleet.ClientOptions{})
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			keys := srvA.BlobKeys()
			if len(keys) > 0 {
				holders, err := rc.Locate(keys)
				ok := err == nil
				for _, k := range keys {
					if len(holders[k]) == 0 {
						ok = false
					}
				}
				if ok {
					close(handoffReady)
					return
				}
			}
			if time.Now().After(deadline) {
				close(handoffReady)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	trees := make([]*protocol.SpanNode, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			connA, err := client.Dial(addrA)
			if err != nil {
				t.Errorf("session %d: dial A: %v", s, err)
				return
			}
			defer connA.Close()
			connA.EnableTelemetry()
			app, err := mlapp.NewFullApp(fmt.Sprintf("soak-app-%d", s), "tiny", model, tinyLabels)
			if err != nil {
				t.Errorf("session %d: %v", s, err)
				return
			}
			off, err := client.NewOffloader(app, connA, client.Options{
				OffloadEventTypes: []string{mlapp.EventClick},
				Models:            []client.ModelToSend{{Name: "tiny", Net: model}},
				BlobRefPreSend:    true,
				FleetSync:         true,
				Flight:            clientFlight,
			})
			if err != nil {
				t.Errorf("session %d: %v", s, err)
				return
			}
			off.StartPreSend()
			if err := off.WaitForAcks(); err != nil {
				t.Errorf("session %d: acks on A: %v", s, err)
				return
			}
			if err := mlapp.LoadImage(app, mlapp.SyntheticImage(soakImageVolume, uint64(s+1))); err != nil {
				t.Errorf("session %d: %v", s, err)
				return
			}
			app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
			if _, err := off.Run(10); err != nil {
				t.Errorf("session %d: run on A: %v", s, err)
				return
			}
			<-handoffReady
			connB, err := client.Dial(addrB)
			if err != nil {
				t.Errorf("session %d: dial B: %v", s, err)
				return
			}
			defer connB.Close()
			connB.EnableTelemetry()
			if err := off.Retarget(connB); err != nil {
				t.Errorf("session %d: retarget: %v", s, err)
				return
			}
			if err := off.WaitForAcks(); err != nil {
				t.Errorf("session %d: acks on B: %v", s, err)
				return
			}
			trees[s] = off.Stats().LastHandoffSpan
		}(s)
	}
	wg.Wait()
	close(stop)
	hammer.Wait()

	// Invariant 1 on every session's handoff tree.
	for s, tree := range trees {
		checkSpanParentage(t, s, tree)
	}

	// Invariant 2, final state: every ring within cap, dumps well-formed.
	for name, f := range map[string]*telemetry.FlightRecorder{
		"client": clientFlight, "server-a": flightA, "server-b": flightB,
	} {
		if f.Bytes() > f.Cap() {
			t.Errorf("%s flight ring over cap: %d > %d", name, f.Bytes(), f.Cap())
		}
		if _, err := json.Marshal(f.Dump()); err != nil {
			t.Errorf("%s flight dump does not marshal: %v", name, err)
		}
	}
	// The tight SLO made every served request a slow incident; the server
	// rings must have recorded (bounded) evidence.
	if flightA.Len() == 0 {
		t.Error("server A flight ring empty despite tight SLO")
	}
}

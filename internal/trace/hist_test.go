package trace

import (
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries: table-driven spot checks of the log-linear bucket
// layout — exact buckets below the first octave, bounded relative error
// above it, clamping at the top.
func TestBucketBoundaries(t *testing.T) {
	tests := []struct {
		name string
		v    int64
		want int
	}{
		{"zero", 0, 0},
		{"negative clamps to zero", -5, 0},
		{"one ns", 1, 1},
		{"last linear", subCount - 1, subCount - 1},
		{"first octave start", subCount, subCount},
		{"first octave end", 2*subCount - 1, 2*subCount - 1},
		{"second octave start", 2 * subCount, 2 * subCount},
		{"overflow clamps", int64(1) << 60, numBuckets - 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := bucketIndex(tc.v); got != tc.want {
				t.Errorf("bucketIndex(%d) = %d, want %d", tc.v, got, tc.want)
			}
		})
	}
}

// TestBucketMonotonic: bucket indices never decrease with the value, every
// value falls strictly below its bucket's upper bound, and upper bounds are
// strictly increasing.
func TestBucketMonotonic(t *testing.T) {
	prevIdx := -1
	for v := int64(0); v < 1<<20; v += 97 {
		idx := bucketIndex(v)
		if idx < prevIdx {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, idx, prevIdx)
		}
		if upper := bucketUpper(idx); v >= upper {
			t.Fatalf("value %d >= bucketUpper(%d) = %d", v, idx, upper)
		}
		prevIdx = idx
	}
	for i := 1; i < numBuckets; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucketUpper(%d) = %d <= bucketUpper(%d) = %d",
				i, bucketUpper(i), i-1, bucketUpper(i-1))
		}
	}
}

// TestBucketRelativeError: the bucket upper bound over-reports a value by at
// most 2^-subBits relative error (plus one ns for the linear range).
func TestBucketRelativeError(t *testing.T) {
	for _, v := range []int64{1, 7, 8, 100, 1000, 12345, 1 << 20, 1<<30 + 12345} {
		upper := bucketUpper(bucketIndex(v))
		maxErr := float64(v)/float64(subCount) + 1
		if float64(upper-v) > maxErr {
			t.Errorf("value %d: upper %d errs by %d, want <= %.0f", v, upper, upper-v, maxErr)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	tests := []struct {
		name    string
		values  []time.Duration
		q       float64
		wantMin time.Duration // quantile must be >= this
		wantMax time.Duration // and <= this (bucket error allowance)
	}{
		{"empty", nil, 0.5, 0, 0},
		{"single", []time.Duration{time.Millisecond}, 0.5, time.Millisecond, time.Millisecond * 9 / 8},
		{
			"p50 of 1..100ms",
			rangeMillis(1, 100), 0.50,
			50 * time.Millisecond, 57 * time.Millisecond,
		},
		{
			"p99 of 1..100ms",
			rangeMillis(1, 100), 0.99,
			99 * time.Millisecond, 112 * time.Millisecond,
		},
		{
			"p95 skewed tail",
			append(rangeMillis(1, 95), rangeMillis(900, 904)...), 0.95,
			95 * time.Millisecond, 107 * time.Millisecond,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			for _, v := range tc.values {
				h.Observe(v)
			}
			got := h.Quantile(tc.q)
			if got < tc.wantMin || got > tc.wantMax {
				t.Errorf("Quantile(%v) = %v, want in [%v, %v]", tc.q, got, tc.wantMin, tc.wantMax)
			}
		})
	}
}

func rangeMillis(lo, hi int) []time.Duration {
	out := make([]time.Duration, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, time.Duration(i)*time.Millisecond)
	}
	return out
}

func TestHistogramMeanAndCount(t *testing.T) {
	var h Histogram
	for _, v := range []time.Duration{time.Millisecond, 3 * time.Millisecond} {
		h.Observe(v)
	}
	if h.Count() != 2 {
		t.Errorf("Count = %d, want 2", h.Count())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Errorf("Mean = %v, want 2ms", h.Mean())
	}
	if h.Sum() != 4*time.Millisecond {
		t.Errorf("Sum = %v, want 4ms", h.Sum())
	}
}

// TestHistogramMerge: merging two histograms yields the same counts,
// buckets, and quantiles as observing everything into one.
func TestHistogramMerge(t *testing.T) {
	var a, b, both Histogram
	for i := 1; i <= 50; i++ {
		d := time.Duration(i) * time.Millisecond
		a.Observe(d)
		both.Observe(d)
	}
	for i := 51; i <= 100; i++ {
		d := time.Duration(i) * time.Millisecond
		b.Observe(d)
		both.Observe(d)
	}
	a.Merge(&b)
	if a.Count() != both.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), both.Count())
	}
	if a.Sum() != both.Sum() {
		t.Fatalf("merged sum = %v, want %v", a.Sum(), both.Sum())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Errorf("merged Quantile(%v) = %v, combined = %v", q, a.Quantile(q), both.Quantile(q))
		}
	}
	a.Merge(nil) // must not panic
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*perG+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*perG {
		t.Errorf("Count = %d, want %d", h.Count(), goroutines*perG)
	}
	var bucketTotal uint64
	h.ForEachBucket(func(_ time.Duration, c uint64) { bucketTotal += c })
	if bucketTotal != goroutines*perG {
		t.Errorf("bucket total = %d, want %d", bucketTotal, goroutines*perG)
	}
}

// Package trace is the offload pipeline's telemetry layer: per-offload span
// traces and lock-free stage-latency histograms.
//
// One offload round trip crosses eight stages — snapshot capture, textual
// encoding, compression, request wire transfer, the server's admission
// queue, batched execution, result wire transfer, and result restoration.
// The paper's headline numbers (Fig 7) are exactly these stage latencies,
// and offload policy (partition choice, load shedding, roaming) is tuned
// against them; coarse per-request totals hide which stage moved. A Trace
// records one request's journey (client- and server-side spans merged via
// the protocol's trace extension); a Recorder aggregates stage latencies
// into mergeable log-bucketed histograms for /metrics, cmd/bench, and the
// scheduler's load signal.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"time"
)

// Stage names one pipeline stage of an offload round trip.
type Stage string

// The offload pipeline stages, in wire order. Probe is the roamer's
// server-selection RTT probe, outside the request pipeline proper.
const (
	StageCapture    Stage = "capture"     // snapshot capture at the client
	StageEncode     Stage = "encode"      // textual snapshot encoding
	StageCompress   Stage = "compress"    // DEFLATE compression (when enabled)
	StageWire       Stage = "wire"        // request frame transfer client → server
	StageQueue      Stage = "queue"       // admission-queue wait at the server
	StageExecute    Stage = "execute"     // restore + handler run + result capture
	StageResultWire Stage = "result_wire" // result frame transfer server → client
	StageRestore    Stage = "restore"     // result decode + apply at the client
	StageProbe      Stage = "probe"       // roaming server-selection probe RTT

	// Fleet-hop and mux stages (the telemetry extension): outside the
	// 8-stage request pipeline, these account cross-process and
	// per-stream overheads that the pipeline stages hide.
	StageStreamWait Stage = "stream_wait" // mux stream-slot semaphore wait at the server
	StageDemux      Stage = "demux"       // response demux routing at the client
	StageRegistry   Stage = "registry"    // registry RPC round trip (locate/register)
	StagePeerFetch  Stage = "peer_fetch"  // server-to-server blob fetch round trip
)

// Stages lists every pipeline stage in pipeline order (excluding StageProbe).
func Stages() []Stage {
	return []Stage{
		StageCapture, StageEncode, StageCompress, StageWire,
		StageQueue, StageExecute, StageResultWire, StageRestore,
	}
}

// AllStages lists every known stage, pipeline stages first.
func AllStages() []Stage {
	return append(Stages(), StageProbe,
		StageStreamWait, StageDemux, StageRegistry, StagePeerFetch)
}

// NewID returns a fresh 16-hex-digit trace ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; keep the zero ID
		// rather than panicking in a telemetry path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Span is one recorded stage duration within a trace.
type Span struct {
	Stage Stage         `json:"stage"`
	Dur   time.Duration `json:"durNanos"`
}

// Trace is one offload's recorded journey through the pipeline. It is built
// by a single goroutine (the offloading path) and read after completion; it
// needs no locking.
type Trace struct {
	// ID is the trace identifier propagated in protocol headers so client
	// and server spans of the same offload can be joined.
	ID string `json:"traceId"`
	// Spans holds the recorded stages in the order they were added.
	Spans []Span `json:"spans"`
	// BatchSize is the server-side execution batch this offload rode in
	// (0 when unknown, 1 for solo execution).
	BatchSize int `json:"batchSize,omitempty"`
}

// New creates a trace with a fresh ID.
func New() *Trace { return &Trace{ID: NewID()} }

// Add appends one stage span. Zero-duration spans are kept: a stage that ran
// and took <1µs is different from a stage that never ran.
func (t *Trace) Add(stage Stage, d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.Spans = append(t.Spans, Span{Stage: stage, Dur: d})
}

// Get returns the total recorded duration of a stage (0 when absent) and
// whether any span of that stage exists.
func (t *Trace) Get(stage Stage) (time.Duration, bool) {
	var total time.Duration
	found := false
	for _, s := range t.Spans {
		if s.Stage == stage {
			total += s.Dur
			found = true
		}
	}
	return total, found
}

// Total returns the sum of all recorded spans.
func (t *Trace) Total() time.Duration {
	var total time.Duration
	for _, s := range t.Spans {
		total += s.Dur
	}
	return total
}

// Recorder aggregates stage latencies into one histogram per stage. All
// methods are safe for concurrent use; the per-stage histograms are
// allocated up front so recording is map-read + atomic add.
type Recorder struct {
	hists map[Stage]*Histogram
}

// NewRecorder creates a recorder covering every known stage.
func NewRecorder() *Recorder {
	r := &Recorder{hists: make(map[Stage]*Histogram, len(AllStages()))}
	for _, s := range AllStages() {
		r.hists[s] = &Histogram{}
	}
	return r
}

// Observe records one stage latency. Unknown stages are dropped.
func (r *Recorder) Observe(stage Stage, d time.Duration) {
	if h, ok := r.hists[stage]; ok {
		h.Observe(d)
	}
}

// ObserveTrace records every span of a completed trace.
func (r *Recorder) ObserveTrace(t *Trace) {
	if t == nil {
		return
	}
	for _, s := range t.Spans {
		r.Observe(s.Stage, s.Dur)
	}
}

// Stage returns the histogram for one stage (nil for unknown stages).
func (r *Recorder) Stage(stage Stage) *Histogram { return r.hists[stage] }

// Merge folds other's histograms into r, stage by stage.
func (r *Recorder) Merge(other *Recorder) {
	if other == nil {
		return
	}
	for s, h := range r.hists {
		h.Merge(other.hists[s])
	}
}

// StageSummary is one stage's percentile summary.
type StageSummary struct {
	Stage Stage
	Quantiles
}

// Summaries returns a percentile summary per stage with at least one
// observation, in pipeline order.
func (r *Recorder) Summaries() []StageSummary {
	var out []StageSummary
	for _, s := range AllStages() {
		h := r.hists[s]
		if h.Count() == 0 {
			continue
		}
		out = append(out, StageSummary{Stage: s, Quantiles: h.Summary()})
	}
	return out
}

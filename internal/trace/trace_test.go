package trace

import (
	"sync"
	"testing"
	"time"
)

func TestNewIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("NewID() = %q, want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestTraceSpans(t *testing.T) {
	tr := New()
	if tr.ID == "" {
		t.Fatal("no trace ID")
	}
	tr.Add(StageCapture, 2*time.Millisecond)
	tr.Add(StageWire, 5*time.Millisecond)
	tr.Add(StageWire, 3*time.Millisecond) // second span, same stage
	tr.Add(StageQueue, -time.Millisecond) // clamps to 0

	if d, ok := tr.Get(StageWire); !ok || d != 8*time.Millisecond {
		t.Errorf("Get(wire) = %v, %v; want 8ms, true", d, ok)
	}
	if d, ok := tr.Get(StageQueue); !ok || d != 0 {
		t.Errorf("Get(queue) = %v, %v; want 0, true", d, ok)
	}
	if _, ok := tr.Get(StageExecute); ok {
		t.Error("Get(execute) reported a span that was never added")
	}
	if tr.Total() != 10*time.Millisecond {
		t.Errorf("Total = %v, want 10ms", tr.Total())
	}
}

func TestRecorderObserveAndSummaries(t *testing.T) {
	r := NewRecorder()
	tr := New()
	tr.Add(StageCapture, time.Millisecond)
	tr.Add(StageExecute, 10*time.Millisecond)
	r.ObserveTrace(tr)
	r.Observe(StageExecute, 20*time.Millisecond)
	r.Observe(Stage("nonsense"), time.Second) // dropped, not a panic

	sums := r.Summaries()
	if len(sums) != 2 {
		t.Fatalf("Summaries() has %d stages, want 2: %+v", len(sums), sums)
	}
	if sums[0].Stage != StageCapture || sums[1].Stage != StageExecute {
		t.Errorf("summaries out of pipeline order: %+v", sums)
	}
	if sums[1].Count != 2 {
		t.Errorf("execute count = %d, want 2", sums[1].Count)
	}
	if sums[1].Mean != 15*time.Millisecond {
		t.Errorf("execute mean = %v, want 15ms", sums[1].Mean)
	}
}

func TestRecorderMerge(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	a.Observe(StageQueue, time.Millisecond)
	b.Observe(StageQueue, 3*time.Millisecond)
	b.Observe(StageProbe, 2*time.Millisecond)
	a.Merge(b)
	if got := a.Stage(StageQueue).Count(); got != 2 {
		t.Errorf("queue count after merge = %d, want 2", got)
	}
	if got := a.Stage(StageProbe).Count(); got != 1 {
		t.Errorf("probe count after merge = %d, want 1", got)
	}
	a.Merge(nil) // must not panic
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				for _, s := range Stages() {
					r.Observe(s, time.Duration(i)*time.Microsecond)
				}
			}
		}()
	}
	wg.Wait()
	for _, s := range Stages() {
		if got := r.Stage(s).Count(); got != 2000 {
			t.Errorf("stage %s count = %d, want 2000", s, got)
		}
	}
}

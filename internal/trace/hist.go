package trace

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: an HDR-style log-linear scheme. Values (latencies
// in nanoseconds) are bucketed by their power-of-two octave, with each octave
// split into 1<<subBits linear sub-buckets. Relative bucket error is bounded
// by 2^-subBits (12.5% at subBits=3), which is ample for latency percentiles,
// and bucket lookup is a handful of bit operations — no floating point, no
// locks.
const (
	// subBits is the number of linear sub-bucket bits per octave.
	subBits = 3
	// subCount is the number of sub-buckets per octave.
	subCount = 1 << subBits
	// maxExp is the highest supported octave; values at or above
	// 2^(maxExp+1) ns clamp into the last bucket. 2^42 ns ≈ 73 min.
	maxExp = 42
	// numBuckets is the total bucket count: values below subCount map
	// linearly (one bucket per nanosecond), each octave above contributes
	// subCount buckets, plus one overflow bucket.
	numBuckets = subCount + (maxExp-subBits+1)*subCount + 1
)

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // position of the top set bit, >= subBits
	if exp > maxExp {
		return numBuckets - 1
	}
	// The sub-bucket is the subBits bits below the top bit.
	sub := (v >> (uint(exp) - subBits)) - subCount
	return subCount + (exp-subBits)*subCount + int(sub)
}

// bucketUpper returns the exclusive upper bound of bucket i in nanoseconds.
// The overflow bucket reports the maximum representable value.
func bucketUpper(i int) int64 {
	if i < subCount {
		return int64(i) + 1
	}
	if i >= numBuckets-1 {
		// Overflow bucket: strictly above every regular bucket's bound.
		return int64(1) << (maxExp + 2)
	}
	i -= subCount
	exp := i/subCount + subBits
	sub := int64(i%subCount) + 1
	return (subCount + sub) << (uint(exp) - subBits)
}

// Histogram is a lock-free, mergeable latency histogram with log-bucketed
// resolution (12.5% worst-case bucket error). All methods are safe for
// concurrent use; Observe is a single atomic add on the hot path.
//
// The zero value is ready to use.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all recorded durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average recorded duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Quantile returns an estimate of the q-quantile (0 < q <= 1) as the upper
// bound of the bucket containing it — a conservative (never under-reporting)
// estimate with bounded relative error. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the target observation.
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < numBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			return time.Duration(bucketUpper(i))
		}
	}
	return time.Duration(bucketUpper(numBuckets - 1))
}

// Merge folds other's observations into h. Concurrent Observes on either
// histogram during a merge are not lost, but the merged totals may reflect a
// slightly torn snapshot — fine for metrics.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := 0; i < numBuckets; i++ {
		if c := other.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
}

// ForEachBucket calls fn for every non-empty bucket in ascending order with
// the bucket's exclusive upper bound and its (non-cumulative) count.
func (h *Histogram) ForEachBucket(fn func(upper time.Duration, count uint64)) {
	for i := 0; i < numBuckets; i++ {
		if c := h.counts[i].Load(); c > 0 {
			fn(time.Duration(bucketUpper(i)), c)
		}
	}
}

// NumBuckets returns the histogram's total bucket count. Bucket indexes in
// digests (ExportBuckets/MergeBuckets) refer to this shared layout.
func NumBuckets() int { return numBuckets }

// BucketUpper returns the exclusive upper bound of bucket i, the public
// form of the digest bucket layout. Indexes outside [0, NumBuckets) clamp.
func BucketUpper(i int) time.Duration {
	if i < 0 {
		i = 0
	}
	if i >= numBuckets {
		i = numBuckets - 1
	}
	return time.Duration(bucketUpper(i))
}

// BucketOf returns the bucket index a duration falls into — the inverse of
// BucketUpper, used to map an SLO threshold onto the digest layout.
func BucketOf(d time.Duration) int { return bucketIndex(int64(d)) }

// ExportBuckets returns a sparse snapshot of the histogram for wire
// digests: occupied buckets as [index, count] pairs in index order, plus
// the exact total count and sum in nanoseconds. A concurrent Observe may
// tear the snapshot slightly (fine for telemetry); MergeBuckets
// reconstructs an equivalent histogram on the receiver.
func (h *Histogram) ExportBuckets() (buckets [][2]int64, count uint64, sumNanos int64) {
	for i := 0; i < numBuckets; i++ {
		if c := h.counts[i].Load(); c > 0 {
			buckets = append(buckets, [2]int64{int64(i), int64(c)})
		}
	}
	return buckets, h.count.Load(), h.sum.Load()
}

// MergeBuckets folds an exported sparse snapshot into h — the receiving
// half of the digest round trip. Out-of-range bucket indexes clamp into
// the overflow bucket rather than corrupting memory (digests arrive from
// the network).
func (h *Histogram) MergeBuckets(buckets [][2]int64, count uint64, sumNanos int64) {
	for _, b := range buckets {
		i, c := b[0], b[1]
		if c <= 0 {
			continue
		}
		if i < 0 || i >= numBuckets {
			i = numBuckets - 1
		}
		h.counts[i].Add(uint64(c))
	}
	h.count.Add(count)
	h.sum.Add(sumNanos)
}

// CountAbove returns how many observations fell in buckets strictly above
// the one containing threshold — a conservative lower bound on the number
// of observations exceeding it (observations sharing the threshold's
// bucket are not counted). This is the SLO engine's bad-event counter over
// digest data.
func (h *Histogram) CountAbove(threshold time.Duration) uint64 {
	idx := bucketIndex(int64(threshold))
	var n uint64
	for i := idx + 1; i < numBuckets; i++ {
		n += h.counts[i].Load()
	}
	return n
}

// Quantiles is a fixed percentile summary of a histogram.
type Quantiles struct {
	Count         uint64
	Mean          time.Duration
	P50, P95, P99 time.Duration
}

// Summary returns the histogram's count, mean, and p50/p95/p99.
func (h *Histogram) Summary() Quantiles {
	return Quantiles{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

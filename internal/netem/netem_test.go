package netem

import (
	"net"
	"testing"
	"time"
)

func TestTransferTimeAnalytic(t *testing.T) {
	serialization := float64(28<<20) * 8 / 30e6 // seconds
	tests := []struct {
		name  string
		p     Profile
		bytes int64
		want  time.Duration
	}{
		{"paper model upload", WiFi30Mbps, 28 << 20,
			WiFi30Mbps.Latency + time.Duration(serialization*float64(time.Second))},
		{"zero bytes", WiFi30Mbps, 0, 2 * time.Millisecond},
		{"unlimited", Unlimited, 1 << 30, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.p.TransferTime(tt.bytes)
			if got != tt.want {
				t.Errorf("TransferTime = %v, want %v", got, tt.want)
			}
		})
	}
	// The paper's §III.B.1 estimate: a 44 MB model at 30 Mbps takes
	// about 12 seconds.
	got := WiFi30Mbps.TransferTime(44 << 20)
	if got < 11*time.Second || got > 13*time.Second {
		t.Errorf("44MB at 30Mbps = %v, paper says ~12s", got)
	}
}

func TestValidate(t *testing.T) {
	if err := WiFi30Mbps.Validate(); err != nil {
		t.Errorf("WiFi30Mbps invalid: %v", err)
	}
	if err := (Profile{BandwidthBitsPerSec: -1}).Validate(); err == nil {
		t.Error("negative bandwidth should be invalid")
	}
	if err := (Profile{Latency: -time.Second}).Validate(); err == nil {
		t.Error("negative latency should be invalid")
	}
}

func TestShapeUnlimitedPassThrough(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if got := Shape(a, Unlimited); got != a {
		t.Error("unlimited profile should return the original conn")
	}
}

// fakeClock drives a shaped conn deterministically.
type fakeClock struct {
	now   time.Time
	slept time.Duration
}

func (f *fakeClock) Now() time.Time        { return f.now }
func (f *fakeClock) Sleep(d time.Duration) { f.slept += d; f.now = f.now.Add(d) }

func TestShapedWritePacing(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		buf := make([]byte, 1<<20)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	clock := &fakeClock{now: time.Unix(0, 0)}
	sc := &Conn{
		Conn:    a,
		profile: Profile{BandwidthBitsPerSec: 8e6, Latency: 10 * time.Millisecond}, // 1 MB/s
		sleep:   clock.Sleep,
		now:     clock.Now,
	}
	// First write: latency + 100 KB at 1 MB/s = 10ms + 100ms.
	if _, err := sc.Write(make([]byte, 100<<10)); err != nil {
		t.Fatal(err)
	}
	want := 10*time.Millisecond + time.Duration(float64(100<<10)/1e6*float64(time.Second))
	if d := clock.slept - want; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("first write slept %v, want ~%v", clock.slept, want)
	}
	// Immediate second write continues the burst: no extra latency.
	before := clock.slept
	if _, err := sc.Write(make([]byte, 100<<10)); err != nil {
		t.Fatal(err)
	}
	wantSecond := time.Duration(float64(100<<10) / 1e6 * float64(time.Second))
	if d := (clock.slept - before) - wantSecond; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("second write slept %v, want ~%v (no extra latency)", clock.slept-before, wantSecond)
	}
}

func TestShapedConnRealTransfer(t *testing.T) {
	// End-to-end over a real pipe with a fast profile: verify data
	// integrity and that pacing actually delays delivery.
	a, b := net.Pipe()
	defer b.Close()
	shaped := Shape(a, Profile{BandwidthBitsPerSec: 8e9}) // 1 GB/s: fast but measurable
	defer shaped.Close()
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, len(payload))
		total := 0
		for total < len(buf) {
			n, err := b.Read(buf[total:])
			if err != nil {
				done <- nil
				return
			}
			total += n
		}
		done <- buf
	}()
	if _, err := shaped.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if got == nil {
		t.Fatal("reader failed")
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("corruption at byte %d", i)
		}
	}
}

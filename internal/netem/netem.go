// Package netem emulates constrained network conditions, standing in for
// the paper's use of the Linux netem qdisc to limit bandwidth to 30 Mbps
// (Wi-Fi-like) between client and edge server (§IV).
//
// It provides both an analytic transfer-time model (used by the
// deterministic experiment simulator) and a real net.Conn wrapper that
// paces writes to the configured bandwidth (used by the runnable examples
// and the TCP integration tests).
package netem

import (
	"fmt"
	"net"
	"time"
)

// Profile describes a network condition.
type Profile struct {
	// BandwidthBitsPerSec is the link bandwidth in bits per second.
	BandwidthBitsPerSec float64
	// Latency is the one-way propagation delay.
	Latency time.Duration
}

// WiFi30Mbps is the paper's emulated "good Wi-Fi" condition: 30 Mbit/s
// with LAN-like latency.
var WiFi30Mbps = Profile{BandwidthBitsPerSec: 30e6, Latency: 2 * time.Millisecond}

// Unlimited disables shaping (useful in tests).
var Unlimited = Profile{}

// TransferTime returns the analytic time to move n bytes across the link:
// one propagation delay plus serialization at the profile bandwidth. A zero
// bandwidth means unlimited.
func (p Profile) TransferTime(n int64) time.Duration {
	d := p.Latency
	if p.BandwidthBitsPerSec > 0 && n > 0 {
		secs := float64(n) * 8 / p.BandwidthBitsPerSec
		d += time.Duration(secs * float64(time.Second))
	}
	return d
}

// Validate reports whether the profile is usable.
func (p Profile) Validate() error {
	if p.BandwidthBitsPerSec < 0 {
		return fmt.Errorf("netem: negative bandwidth %f", p.BandwidthBitsPerSec)
	}
	if p.Latency < 0 {
		return fmt.Errorf("netem: negative latency %v", p.Latency)
	}
	return nil
}

// Conn wraps a net.Conn, pacing writes to the profile's bandwidth and
// charging the propagation delay on the first write of each burst. Reads
// pass through: shaping the sender side of each direction shapes the link.
type Conn struct {
	net.Conn
	profile Profile
	// nextFree is the virtual time at which the link is next idle.
	nextFree time.Time
	sleep    func(time.Duration)
	now      func() time.Time
}

var _ net.Conn = (*Conn)(nil)

// Shape wraps conn with bandwidth pacing. With an Unlimited profile the
// original conn is returned.
func Shape(conn net.Conn, p Profile) net.Conn {
	if p.BandwidthBitsPerSec <= 0 && p.Latency <= 0 {
		return conn
	}
	return &Conn{Conn: conn, profile: p, sleep: time.Sleep, now: time.Now}
}

// Write paces the write so the cumulative rate does not exceed the profile
// bandwidth, then forwards to the underlying conn.
func (c *Conn) Write(b []byte) (int, error) {
	now := c.now()
	start := c.nextFree
	if start.Before(now) {
		// Link idle: a fresh burst pays the propagation delay.
		start = now.Add(c.profile.Latency)
	}
	dur := time.Duration(0)
	if c.profile.BandwidthBitsPerSec > 0 {
		dur = time.Duration(float64(len(b)) * 8 / c.profile.BandwidthBitsPerSec * float64(time.Second))
	}
	c.nextFree = start.Add(dur)
	if wait := c.nextFree.Sub(now); wait > 0 {
		c.sleep(wait)
	}
	return c.Conn.Write(b)
}

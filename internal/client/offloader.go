package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"websnap/internal/nn"
	"websnap/internal/obs"
	"websnap/internal/protocol"
	"websnap/internal/snapshot"
	"websnap/internal/telemetry"
	"websnap/internal/trace"
	"websnap/internal/webapp"
)

// ModelToSend names one model to pre-send to the edge server.
type ModelToSend struct {
	// Name is the model's name as loaded in the app.
	Name string
	// Net is the network to ship. For partial inference this is the rear
	// part only.
	Net *nn.Network
	// Partial marks a rear-only pre-send.
	Partial bool
}

// Options configures an Offloader.
type Options struct {
	// OffloadEventTypes lists the event types whose handlers are
	// offloaded instead of executed locally (e.g. "click" for full
	// inference, "front_complete" for partial inference per Fig 5).
	OffloadEventTypes []string
	// Models lists the models to pre-send when StartPreSend is called.
	// The developer supplies this list, per §III.B.1 ("the list of the
	// files ... are given by app developers").
	Models []ModelToSend
	// LocalFallback executes the event locally when offloading fails
	// (server unreachable, protocol error). Defaults to false so errors
	// surface in tests; production callers enable it.
	LocalFallback bool
	// ExcludeModels lists models that must never leave the device — the
	// front part of a partially-split DNN (§III.B.2): withholding it
	// both shrinks the snapshot and prevents the server from inverting
	// the feature data back to the input.
	ExcludeModels []string
	// EnableDelta ships repeated offloads as deltas against the state
	// left at the server by the previous offload (the paper's §VI future
	// work). The first offload — and any offload whose base the server
	// no longer holds — automatically falls back to a full snapshot.
	EnableDelta bool
	// Compress ships snapshot (and delta) bodies DEFLATE-compressed.
	// Snapshots are text, so this typically shrinks transfers several
	// fold at the cost of client CPU; it is off by default to match the
	// paper's plain-text snapshots.
	Compress bool
	// MaxQueueingDelay sheds offloads to local execution while the
	// server's last load hint predicts a queueing delay above this bound
	// or reports a saturated admission queue — the client-side half of
	// load-aware offloading: don't ship work to a server that will park
	// it in a queue longer than it is worth. Zero disables shedding.
	MaxQueueingDelay time.Duration
	// LoadHintTTL bounds how long a received load hint influences
	// shedding; stale hints are ignored. Zero selects DefaultLoadHintTTL.
	LoadHintTTL time.Duration
	// Audit, when non-nil, receives exactly one structured decision event
	// per offload-eligible event the offloader processes: offloaded, shed
	// to local, fallen back after an error, or surfaced as an error.
	Audit *obs.Auditor
	// AuditPath is the decision path recorded for successful offloads:
	// obs.PathFull (the default) or obs.PathPartial for split-DNN
	// sessions.
	AuditPath obs.DecisionPath
	// SplitLabel names the partition point, recorded on partial-offload
	// decisions.
	SplitLabel string
	// PredictedOffload is the cost model's end-to-end latency prediction
	// for the configured offload path; recorded on successful offload
	// decisions so the audit can quantify prediction error. Zero means no
	// prediction available.
	PredictedOffload time.Duration
	// BlobRefPreSend offers each model to the server by content reference
	// (nn.Fingerprint) before uploading bytes. A fleet server that holds
	// the blob — or can fetch it from a peer — ACKs without the upload, so
	// a roaming client never re-ships a model the fleet already has; a
	// NeedBlob answer (or an old server's error) falls back to the full
	// upload at the cost of one extra round trip.
	BlobRefPreSend bool
	// FleetSync keeps the delta sync point across Retarget: in a fleet the
	// new server recovers the base state from the blob index (published by
	// the previous server), so the first post-handoff offload ships as a
	// delta instead of a full snapshot. Leave false against non-fleet
	// servers, where the base would be unrecoverable and the first delta
	// attempt wasted.
	FleetSync bool
	// Placement names the fleet placement policy that selected this
	// session's server; recorded on every audit decision.
	Placement string
	// Flight, when non-nil, receives a flight-recorder entry for every
	// shed, failed, and fallen-back offload decision, plus the merged span
	// tree of each roam handoff pre-send — the client-side feed of
	// /debug/flight.
	Flight *telemetry.FlightRecorder
}

// DefaultLoadHintTTL is how long a load hint stays fresh for shedding
// decisions when Options.LoadHintTTL is zero.
const DefaultLoadHintTTL = 5 * time.Second

// Stats records the transfer sizes of the most recent offload, for
// experiment reporting.
type Stats struct {
	// Offloads counts completed snapshot round trips.
	Offloads int
	// LocalFallbacks counts events executed locally after a failed
	// offload attempt.
	LocalFallbacks int
	// LastSnapshotBytes is the encoded size of the last shipped
	// snapshot.
	LastSnapshotBytes int64
	// LastResultBytes is the encoded size of the last result snapshot.
	LastResultBytes int64
	// LastModelIncluded reports whether the last offload had to ship
	// model files inline (offload before ACK).
	LastModelIncluded bool
	// LastInlineModelBytes is the size of model weights shipped inline
	// with the last offload (zero after the ACK has arrived).
	LastInlineModelBytes int64
	// DeltaOffloads counts offloads that shipped as deltas against
	// server-side state.
	DeltaOffloads int
	// DeltaFallbacks counts delta attempts the server rejected (base
	// state missing), causing a full-snapshot retry.
	DeltaFallbacks int
	// LoadSheds counts events executed locally because the server's load
	// hint predicted too much queueing delay (no offload was attempted).
	LoadSheds int
	// Redials counts successful in-place reconnects after the connection
	// was marked broken (ErrConnBroken).
	Redials int
	// PreSendBytes is the total model weight bytes actually uploaded
	// (background pre-sends and inline sends; reference hits ship none).
	PreSendBytes int64
	// RefPreSendHits counts model pre-sends satisfied by content
	// reference — the fleet already held the blob, zero bytes shipped.
	RefPreSendHits int
	// RefPreSendMisses counts reference attempts answered NeedBlob (or
	// refused by an old server), each followed by a full upload.
	RefPreSendMisses int
	// LastTiming is the wall-clock phase breakdown of the last offload —
	// the real-path counterpart of the paper's Fig 7.
	LastTiming Timing
	// LastTrace is the merged client+server span trace of the last
	// completed offload (nil before the first).
	LastTrace *trace.Trace
	// LastHandoffSpan is the merged cross-process span tree of the most
	// recent traced handoff pre-send: the client root over the new
	// server's resolve span, which nests the registry locate and any peer
	// fetch — one tree, one trace ID, every process the handoff touched.
	// Nil until a Retarget on a telemetry-enabled Conn pre-sends a model.
	LastHandoffSpan *protocol.SpanNode
}

// Timing is the measured wall-clock breakdown of one offload round trip.
type Timing struct {
	// InlineModelSend is the time spent shipping un-ACKed models before
	// the snapshot (zero after pre-sending completes).
	InlineModelSend time.Duration
	// CaptureEncode covers snapshot capture plus textual encoding at the
	// client (Fig 7's "Snapshot Capture (C)").
	CaptureEncode time.Duration
	// RoundTrip covers transmission both ways plus everything at the
	// server (restore, DNN execution, result capture).
	RoundTrip time.Duration
	// DecodeApply covers decoding and applying the result snapshot at
	// the client (Fig 7's "Snapshot Restoration (C)").
	DecodeApply time.Duration
}

// Total returns the end-to-end offload time.
func (t Timing) Total() time.Duration {
	return t.InlineModelSend + t.CaptureEncode + t.RoundTrip + t.DecodeApply
}

// Offloader drives a web app with snapshot-based offloading: events of
// designated types are captured into snapshots and executed at the edge
// server; everything else runs locally.
type Offloader struct {
	app  *webapp.App
	conn *Conn
	opts Options

	offloadTypes  map[string]bool
	excludeModels map[string]bool
	// rec aggregates per-stage latencies across this offloader's traces.
	rec *trace.Recorder

	mu      sync.Mutex
	acked   map[string]bool
	ackErrs []error
	stats   Stats
	// lastSync is the last full snapshot state both client and server
	// hold (the server's previous result), the base for delta offloads.
	lastSync *snapshot.Snapshot
	// handoffTrace, set by Retarget on a telemetry-enabled Conn, is the
	// trace ID stamped on the post-handoff pre-sends so the new server's
	// resolution work (registry locate, peer fetch) joins one trace.
	handoffTrace string

	presendWG      sync.WaitGroup
	presendStarted bool
}

// NewOffloader wires an app to an edge-server connection.
func NewOffloader(app *webapp.App, conn *Conn, opts Options) (*Offloader, error) {
	if app == nil || conn == nil {
		return nil, errors.New("client: nil app or conn")
	}
	types := make(map[string]bool, len(opts.OffloadEventTypes))
	for _, t := range opts.OffloadEventTypes {
		types[t] = true
	}
	excluded := make(map[string]bool, len(opts.ExcludeModels))
	for _, name := range opts.ExcludeModels {
		excluded[name] = true
	}
	for _, m := range opts.Models {
		if excluded[m.Name] {
			return nil, fmt.Errorf("client: model %q is both pre-sent and excluded", m.Name)
		}
	}
	o := &Offloader{
		app:           app,
		conn:          conn,
		opts:          opts,
		offloadTypes:  types,
		excludeModels: excluded,
		acked:         make(map[string]bool),
		rec:           trace.NewRecorder(),
	}
	// The Conn's demultiplexer feeds its routing latency into the same
	// recorder as the offload stages, so one digest covers both.
	conn.SetTraceRecorder(o.rec)
	return o, nil
}

// TraceRecorder exposes the per-stage latency histograms aggregated over
// every offload this offloader has completed.
func (o *Offloader) TraceRecorder() *trace.Recorder { return o.rec }

// App returns the driven app.
func (o *Offloader) App() *webapp.App { return o.app }

// Retarget points the offloader at a different edge server — the paper's
// mobility scenario (§I): snapshot-based offloading "can readily work on a
// new edge server since it has no dependence on the previous server". All
// per-server state is reset: model ACKs (the new server has no models) and
// the delta sync point. Pre-sending restarts if it was started before.
//
// Like the app itself, the offloader is single-threaded: Retarget must not
// race with Step/Offload calls.
func (o *Offloader) Retarget(conn *Conn) error {
	if conn == nil {
		return errors.New("client: retarget to nil conn")
	}
	// Let any in-flight pre-send finish against the old server before
	// swapping; its ACKs are about to be discarded anyway.
	o.presendWG.Wait()
	conn.SetTraceRecorder(o.rec)
	o.mu.Lock()
	o.conn = conn
	o.acked = make(map[string]bool)
	o.ackErrs = nil
	// A telemetry-enabled handoff gets one trace ID for all its pre-sends:
	// the new server's resolution hops all join the same tree.
	o.handoffTrace = ""
	if conn.TelemetryEnabled() {
		o.handoffTrace = trace.NewID()
	}
	if !o.opts.FleetSync {
		// Outside a fleet the new server cannot know the old sync point.
		// With FleetSync the base survives: the previous server published
		// it to the blob index, and the new one recovers it on the first
		// delta.
		o.lastSync = nil
	}
	restart := o.presendStarted
	o.presendStarted = false
	o.mu.Unlock()
	if restart {
		o.StartPreSend()
	}
	return nil
}

// Stats returns a copy of the offloader's counters.
func (o *Offloader) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}

// StartPreSend begins sending the configured models to the edge server in
// the background, as the paper does when the web app starts. Offloads
// issued before a model's ACK arrives ship the model inside the snapshot
// instead (slower); offloads after the ACK ship a spec-only snapshot.
func (o *Offloader) StartPreSend() {
	o.mu.Lock()
	if o.presendStarted {
		o.mu.Unlock()
		return
	}
	o.presendStarted = true
	o.mu.Unlock()
	o.presendWG.Add(1)
	go func() {
		defer o.presendWG.Done()
		for _, m := range o.opts.Models {
			_, err := o.preSend(m.Name, m.Net, m.Partial)
			o.mu.Lock()
			if err != nil {
				o.ackErrs = append(o.ackErrs, fmt.Errorf("pre-send %q: %w", m.Name, err))
			} else {
				o.acked[m.Name] = true
			}
			o.mu.Unlock()
		}
	}()
}

// preSend ships one model to the current server, by content reference
// first when BlobRefPreSend is on, and returns the weight bytes actually
// uploaded (zero on a reference hit).
func (o *Offloader) preSend(name string, model *nn.Network, partial bool) (int64, error) {
	if o.opts.BlobRefPreSend {
		o.mu.Lock()
		tid := o.handoffTrace
		o.mu.Unlock()
		start := time.Now()
		needBlob, span, err := o.conn.PreSendModelRefTraced(o.app.ID(), name, model, partial, tid)
		if err != nil {
			return 0, err
		}
		if span != nil {
			o.noteHandoffSpan(tid, name, span, time.Since(start))
		}
		if !needBlob {
			o.mu.Lock()
			o.stats.RefPreSendHits++
			o.mu.Unlock()
			return 0, nil
		}
		o.mu.Lock()
		o.stats.RefPreSendMisses++
		o.mu.Unlock()
	}
	if err := o.conn.PreSendModel(o.app.ID(), name, model, partial); err != nil {
		return 0, err
	}
	sent := model.ModelBytes()
	o.mu.Lock()
	o.stats.PreSendBytes += sent
	o.mu.Unlock()
	return sent, nil
}

// noteHandoffSpan parents a traced pre-send's server-side resolve span
// under a client root — the completed cross-process tree — and records it
// in Stats and the flight recorder.
func (o *Offloader) noteHandoffSpan(traceID, name string, span *protocol.SpanNode, rtt time.Duration) {
	root := &protocol.SpanNode{
		Op:       "handoff_presend",
		Addr:     "client",
		Micros:   rtt.Microseconds(),
		Detail:   name,
		Children: []*protocol.SpanNode{span},
	}
	o.mu.Lock()
	o.stats.LastHandoffSpan = root
	o.mu.Unlock()
	if o.opts.Flight != nil {
		o.opts.Flight.Record(telemetry.FlightEntry{
			TraceID: traceID,
			Reason:  telemetry.FlightHandoff,
			Note:    "handoff pre-send of model " + name,
			Span:    root,
		})
	}
}

// WaitForAcks blocks until every configured model pre-send has completed
// (successfully or not) and returns any accumulated errors.
func (o *Offloader) WaitForAcks() error {
	o.presendWG.Wait()
	o.mu.Lock()
	defer o.mu.Unlock()
	return errors.Join(o.ackErrs...)
}

// ModelAcked reports whether the named model's ACK has arrived.
func (o *Offloader) ModelAcked(name string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.acked[name]
}

// ShouldOffload reports whether an event's handler is configured for
// offloading.
func (o *Offloader) ShouldOffload(ev webapp.Event) bool {
	return o.offloadTypes[ev.Type]
}

// Step processes the next pending app event: offloaded types go to the edge
// server, everything else runs locally. It reports whether an event was
// processed.
func (o *Offloader) Step() (bool, error) {
	ev, ok := o.app.PeekEvent()
	if !ok {
		return false, nil
	}
	if !o.ShouldOffload(ev) {
		if err := o.app.Step(); err != nil {
			return true, err
		}
		return true, nil
	}
	o.app.PopEvent()
	if shed, reason := o.shouldShed(); shed {
		o.mu.Lock()
		o.stats.LoadSheds++
		o.mu.Unlock()
		start := time.Now()
		o.app.DispatchEvent(ev)
		err := o.app.Step()
		o.decide(obs.Decision{Path: obs.PathShed, Reason: reason, Measured: time.Since(start)})
		return true, err
	}
	out, err := o.offload(ev)
	if err != nil {
		// A broken connection (mid-frame timeout, torn read) would desync
		// every later request: re-establish it now so the next offload
		// runs on a clean frame stream, regardless of how this event is
		// finished.
		o.maybeRedial(err)
		if !o.opts.LocalFallback {
			o.decide(obs.Decision{Path: obs.PathError, Reason: errKind(err), TraceID: out.traceID})
			return true, err
		}
		o.mu.Lock()
		o.stats.LocalFallbacks++
		o.mu.Unlock()
		start := time.Now()
		o.app.DispatchEvent(ev)
		stepErr := o.app.Step()
		o.decide(obs.Decision{Path: obs.PathFallback, Reason: errKind(err),
			TraceID: out.traceID, Measured: time.Since(start)})
		return true, stepErr
	}
	o.decideSuccess(out)
	return true, nil
}

// offloadOutcome carries the audit-relevant facts of one offload attempt.
type offloadOutcome struct {
	// traceID identifies the request, joining the decision to the span
	// pipeline; set even for attempts that failed after the request was
	// stamped.
	traceID string
	// delta marks an offload shipped as a delta snapshot.
	delta bool
	// batch is the server-side batch the request was executed in.
	batch int
	// measured is the end-to-end wall time of the offload round trip.
	measured time.Duration
}

// errKind classifies an offload error for decision attribution.
func errKind(err error) string {
	switch {
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrConnBroken):
		return "conn-broken"
	case errors.Is(err, ErrServerError):
		return "server-error"
	default:
		return "other"
	}
}

// decide fills one decision event's shared context (app, server, hint age)
// and records it; sheds, errors, and fallbacks also land in the flight
// recorder (with the decision joined to the entry) when one is configured.
func (o *Offloader) decide(d obs.Decision) {
	d.AppID = o.app.ID()
	if d.Server == "" {
		d.Server = o.serverAddr()
	}
	d.Placement = o.opts.Placement
	d.HintAge = o.hintAge()
	if o.opts.Audit != nil {
		o.opts.Audit.Record(d)
	}
	if o.opts.Flight == nil {
		return
	}
	var reason string
	switch d.Path {
	case obs.PathShed:
		reason = telemetry.FlightShed
	case obs.PathError, obs.PathFallback:
		reason = telemetry.FlightError
	default:
		return
	}
	dc := d
	o.opts.Flight.Record(telemetry.FlightEntry{
		TraceID:  d.TraceID,
		Reason:   reason,
		Note:     string(d.Path) + ": " + d.Reason,
		Decision: &dc,
	})
}

// decideSuccess records the decision for a completed offload, carrying the
// cost model's prediction so the audit can measure prediction error.
func (o *Offloader) decideSuccess(out offloadOutcome) {
	path := o.opts.AuditPath
	if path == "" {
		path = obs.PathFull
	}
	o.decide(obs.Decision{
		Path:       path,
		SplitLabel: o.opts.SplitLabel,
		Predicted:  o.opts.PredictedOffload,
		Measured:   out.measured,
		TraceID:    out.traceID,
		Delta:      out.delta,
		BatchSize:  out.batch,
	})
}

// serverAddr identifies the edge server the offloader currently targets.
func (o *Offloader) serverAddr() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.conn.Addr()
}

// hintAge reports how stale the current server load hint is; negative when
// no hint has arrived.
func (o *Offloader) hintAge() time.Duration {
	o.mu.Lock()
	conn := o.conn
	o.mu.Unlock()
	if _, at, ok := conn.LastLoad(); ok {
		return time.Since(at)
	}
	return -1
}

// maybeRedial re-establishes the connection after an ErrConnBroken failure.
// It reports whether a redial happened; failures are left for the next
// attempt (the conn stays broken and keeps failing fast).
func (o *Offloader) maybeRedial(err error) bool {
	if !errors.Is(err, ErrConnBroken) {
		return false
	}
	o.mu.Lock()
	conn := o.conn
	o.mu.Unlock()
	if rerr := conn.Redial(); rerr != nil {
		return false
	}
	o.mu.Lock()
	o.stats.Redials++
	o.mu.Unlock()
	return true
}

// shouldShed reports whether the server's last load hint says to keep this
// event local: the hint is fresh and predicts a queueing delay beyond the
// configured bound (or a saturated queue). The reason names the trigger
// for decision attribution.
func (o *Offloader) shouldShed() (bool, string) {
	if o.opts.MaxQueueingDelay <= 0 {
		return false, ""
	}
	o.mu.Lock()
	conn := o.conn
	o.mu.Unlock()
	hint, at, ok := conn.LastLoad()
	if !ok {
		return false, ""
	}
	ttl := o.opts.LoadHintTTL
	if ttl <= 0 {
		ttl = DefaultLoadHintTTL
	}
	if time.Since(at) > ttl {
		return false, ""
	}
	if hint.Saturated {
		return true, "hint-saturated"
	}
	if hint.QueueingDelay() > o.opts.MaxQueueingDelay {
		return true, "hint-delay"
	}
	return false, ""
}

// Run drives the app until its event queue drains or maxSteps events have
// been processed.
func (o *Offloader) Run(maxSteps int) (int, error) {
	steps := 0
	for steps < maxSteps {
		processed, err := o.Step()
		if err != nil {
			return steps, err
		}
		if !processed {
			return steps, nil
		}
		steps++
	}
	if _, pending := o.app.PeekEvent(); pending {
		return steps, fmt.Errorf("client: app %q did not quiesce within %d steps", o.app.ID(), maxSteps)
	}
	return steps, nil
}

// Offload executes ev's handler at the edge server via a snapshot round
// trip, then applies the result snapshot to the local app (Fig 3). When an
// auditor is configured the call emits one decision event; callers driving
// the app through Step must not call Offload for the same event, or the
// event would be audited twice.
func (o *Offloader) Offload(ev webapp.Event) error {
	out, err := o.offload(ev)
	if err != nil {
		o.decide(obs.Decision{Path: obs.PathError, Reason: errKind(err), TraceID: out.traceID})
		return err
	}
	o.decideSuccess(out)
	return nil
}

// offload executes one offload round trip without emitting a decision —
// Step and Offload wrap it and attribute the outcome exactly once.
//
// If a model's ACK has not arrived yet, the client "sends both the snapshot
// and the NN model, albeit it is slower" (§III.B.1): the model files go
// first as an inline pre-send, then the snapshot ships spec-only.
func (o *Offloader) offload(ev webapp.Event) (offloadOutcome, error) {
	var timing Timing
	modelIncluded := false
	var inlineBytes int64
	policies := make(map[string]snapshot.ModelPolicy)
	inlineStart := time.Now()
	for _, name := range o.app.ModelNames() {
		if o.excludeModels[name] {
			policies[name] = snapshot.ModelOmit
			continue
		}
		if o.ModelAcked(name) {
			continue
		}
		model, _ := o.app.Model(name)
		sent, err := o.preSend(name, model, false)
		if err != nil {
			return offloadOutcome{}, fmt.Errorf("client: inline model send %q: %w", name, err)
		}
		if sent > 0 {
			modelIncluded = true
			inlineBytes += sent
		}
		o.mu.Lock()
		o.acked[name] = true
		o.mu.Unlock()
	}
	if modelIncluded {
		timing.InlineModelSend = time.Since(inlineStart)
	}
	captureStart := time.Now()
	snap, err := snapshot.Capture(o.app, snapshot.Options{
		DefaultModelPolicy: snapshot.ModelSpecOnly,
		ModelPolicies:      policies,
		PendingEvent:       &ev,
	})
	if err != nil {
		return offloadOutcome{}, fmt.Errorf("client: capture: %w", err)
	}
	captureDur := time.Since(captureStart)

	if o.opts.EnableDelta {
		o.mu.Lock()
		base := o.lastSync
		o.mu.Unlock()
		if base != nil {
			out, done, err := o.offloadDelta(base, snap, modelIncluded, inlineBytes, timing, captureDur)
			if err == nil && done {
				return out, nil
			}
			if err != nil {
				// The server may have lost the base state (restart,
				// hand-off to a new server): retry as a full snapshot.
				o.mu.Lock()
				o.stats.DeltaFallbacks++
				o.lastSync = nil
				o.mu.Unlock()
			}
		}
	}

	encodeStart := time.Now()
	encoded, err := snap.Encode()
	if err != nil {
		return offloadOutcome{}, fmt.Errorf("client: encode: %w", err)
	}
	encodeDur := time.Since(encodeStart)
	timing.CaptureEncode = captureDur + encodeDur
	reply, err := o.conn.offloadBody(protocol.MsgSnapshot, protocol.MsgResultSnapshot, o.app.ID(), encoded, o.opts.Compress)
	if err != nil {
		return offloadOutcome{traceID: reply.TraceID}, err
	}
	timing.RoundTrip = reply.RoundTrip
	applyStart := time.Now()
	result, err := snapshot.Decode(reply.Result)
	if err != nil {
		return offloadOutcome{traceID: reply.TraceID}, fmt.Errorf("client: decode result: %w", err)
	}
	if err := result.ApplyTo(o.app, snapshot.RestoreOptions{}); err != nil {
		return offloadOutcome{traceID: reply.TraceID}, fmt.Errorf("client: apply result: %w", err)
	}
	timing.DecodeApply = time.Since(applyStart)
	tr := assembleTrace(reply, captureDur, encodeDur, timing.DecodeApply)
	o.rec.ObserveTrace(tr)
	o.mu.Lock()
	o.stats.Offloads++
	o.stats.LastSnapshotBytes = reply.WireBytes
	o.stats.LastResultBytes = int64(len(reply.Result))
	o.stats.LastModelIncluded = modelIncluded
	o.stats.LastInlineModelBytes = inlineBytes
	o.stats.LastTiming = timing
	o.stats.LastTrace = tr
	o.lastSync = result
	o.mu.Unlock()
	return offloadOutcome{traceID: tr.ID, batch: tr.BatchSize, measured: timing.Total()}, nil
}

// assembleTrace merges one round trip's client-side measurements with the
// server's span report into a single per-offload trace.
//
// The two clocks are never compared directly: the server reports durations
// only, and wire time is derived as the client-observed round trip minus the
// server's total, split between the upload and download legs proportionally
// to the bytes each moved. Server-side decode/execute/encode fold into the
// execute stage; the queue span is the admission-queue wait.
func assembleTrace(reply offloadReply, capture, encode, restore time.Duration) *trace.Trace {
	tr := &trace.Trace{ID: reply.TraceID}
	tr.Add(trace.StageCapture, capture)
	tr.Add(trace.StageEncode, encode)
	if c := reply.Compress + reply.Decompress; c > 0 {
		tr.Add(trace.StageCompress, c)
	}
	wire := reply.RoundTrip
	if st := reply.ServerTrace; st != nil {
		if t := st.Total(); t < wire {
			wire -= t
		} else {
			wire = 0
		}
	}
	up, down := wire, time.Duration(0)
	if total := reply.WireBytes + reply.RespBytes; total > 0 {
		up = wire * time.Duration(reply.WireBytes) / time.Duration(total)
		down = wire - up
	}
	tr.Add(trace.StageWire, up)
	if st := reply.ServerTrace; st != nil {
		tr.Add(trace.StageQueue, time.Duration(st.QueueMicros)*time.Microsecond)
		exec := st.DecodeMicros + st.ExecuteMicros + st.EncodeMicros
		tr.Add(trace.StageExecute, time.Duration(exec)*time.Microsecond)
		tr.BatchSize = st.BatchSize
	}
	tr.Add(trace.StageResultWire, down)
	tr.Add(trace.StageRestore, restore)
	return tr
}

// offloadDelta ships the offload as a delta against base (the server's
// previous result). It reports done=true on success; errors signal the
// caller to fall back to a full snapshot.
func (o *Offloader) offloadDelta(base, snap *snapshot.Snapshot, modelIncluded bool,
	inlineBytes int64, timing Timing, captureDur time.Duration) (offloadOutcome, bool, error) {
	encodeStart := time.Now()
	delta, err := snapshot.Diff(base, snap)
	if err != nil {
		return offloadOutcome{}, false, err
	}
	encoded, err := delta.Encode()
	if err != nil {
		return offloadOutcome{}, false, err
	}
	encodeDur := time.Since(encodeStart)
	timing.CaptureEncode = captureDur + encodeDur
	reply, err := o.conn.offloadBody(protocol.MsgSnapshotDelta, protocol.MsgResultDelta, o.app.ID(), encoded, o.opts.Compress)
	if err != nil {
		return offloadOutcome{traceID: reply.TraceID}, false, err
	}
	timing.RoundTrip = reply.RoundTrip
	applyStart := time.Now()
	resultDelta, err := snapshot.DecodeDelta(reply.Result)
	if err != nil {
		return offloadOutcome{traceID: reply.TraceID}, false, err
	}
	// The result delta is relative to the pre-execution state, which is
	// exactly the snapshot we just diffed from.
	result, err := resultDelta.Apply(snap)
	if err != nil {
		return offloadOutcome{traceID: reply.TraceID}, false, err
	}
	if err := result.ApplyTo(o.app, snapshot.RestoreOptions{}); err != nil {
		return offloadOutcome{traceID: reply.TraceID}, false, fmt.Errorf("client: apply delta result: %w", err)
	}
	timing.DecodeApply = time.Since(applyStart)
	tr := assembleTrace(reply, captureDur, encodeDur, timing.DecodeApply)
	o.rec.ObserveTrace(tr)
	o.mu.Lock()
	o.stats.Offloads++
	o.stats.DeltaOffloads++
	o.stats.LastSnapshotBytes = reply.WireBytes
	o.stats.LastResultBytes = int64(len(reply.Result))
	o.stats.LastModelIncluded = modelIncluded
	o.stats.LastInlineModelBytes = inlineBytes
	o.stats.LastTiming = timing
	o.stats.LastTrace = tr
	o.lastSync = result
	o.mu.Unlock()
	return offloadOutcome{traceID: tr.ID, delta: true, batch: tr.BatchSize,
		measured: timing.Total()}, true, nil
}

package client

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"websnap/internal/edge"
	"websnap/internal/protocol"
)

// pongFrameBytes serializes one valid MsgPong frame.
func pongFrameBytes(t *testing.T) []byte {
	t.Helper()
	msg, err := protocol.Encode(protocol.MsgPong, protocol.PongHeader{Installed: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := protocol.Write(&buf, msg); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMidFrameStallBreaksConn is the regression test for the roundTrip
// desync bug: a response that stalls mid-frame must poison the Conn — before
// the fix the next request would read the stale frame's leftover bytes as a
// fresh frame header and decode garbage. Now the Conn is marked broken,
// fails fast, and recovers via Redial.
func TestMidFrameStallBreaksConn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	pong := pongFrameBytes(t)

	var connIdx atomic.Int64
	stall := make(chan struct{})
	t.Cleanup(func() { close(stall) })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			idx := connIdx.Add(1)
			go func(c net.Conn, idx int64) {
				defer c.Close()
				for {
					if _, err := protocol.Read(c); err != nil {
						return
					}
					if idx == 1 {
						// First connection: answer with a torn frame —
						// a valid prefix, then silence.
						c.Write(pong[:10]) //nolint:errcheck
						<-stall
						return
					}
					if _, err := c.Write(pong); err != nil {
						return
					}
				}
			}(c, idx)
		}
	}()

	conn, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetRequestTimeout(200 * time.Millisecond)

	// First request: the response stalls mid-frame, the deadline expires,
	// and the Conn must come back marked broken.
	if _, _, err := conn.Ping(); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("ping against stalled frame: err = %v, want ErrConnBroken", err)
	}
	if !conn.Broken() {
		t.Fatal("Conn not marked broken after mid-frame stall")
	}

	// Subsequent requests fail fast without touching the socket.
	start := time.Now()
	if _, _, err := conn.Ping(); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("ping on broken conn: err = %v, want ErrConnBroken", err)
	}
	if fast := time.Since(start); fast > 50*time.Millisecond {
		t.Errorf("broken conn did not fail fast: %v", fast)
	}

	// Redial recovers in place.
	if err := conn.Redial(); err != nil {
		t.Fatalf("redial: %v", err)
	}
	if conn.Broken() {
		t.Error("Broken() still true after successful redial")
	}
	installed, _, err := conn.Ping()
	if err != nil {
		t.Fatalf("ping after redial: %v", err)
	}
	if !installed {
		t.Error("pong after redial lost the install flag")
	}
}

// TestWrappedConnCannotRedial: NewConn wraps a foreign socket, so there is
// no address to redial; the error must still identify the broken state.
func TestWrappedConnCannotRedial(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	conn := NewConn(a)
	if err := conn.Redial(); !errors.Is(err, ErrConnBroken) {
		t.Errorf("wrapped redial err = %v, want ErrConnBroken", err)
	}
}

// TestOffloaderRedialAfterTornResponse drives the full recovery path
// end-to-end through a flaky proxy in front of a real edge server: the first
// proxied connection tears the server's response after 20 bytes and closes,
// so the offload fails with a broken conn; the offloader must redial
// (landing on a clean proxy connection), finish the event locally, and
// offload normally on the next event.
func TestOffloaderRedialAfterTornResponse(t *testing.T) {
	backend := startEdge(t, edge.Config{Installed: true})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var connIdx atomic.Int64
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			b, err := net.Dial("tcp", backend)
			if err != nil {
				c.Close()
				return
			}
			idx := connIdx.Add(1)
			go func(c, b net.Conn, idx int64) {
				defer c.Close()
				defer b.Close()
				go io.Copy(b, c) //nolint:errcheck // client → backend relays fully
				if idx == 1 {
					// Tear the first response after 20 bytes — mid frame
					// header — then hang up.
					io.CopyN(c, b, 20) //nolint:errcheck
					return
				}
				io.Copy(c, b) //nolint:errcheck
			}(c, b, idx)
		}
	}()

	conn := dialEdge(t, ln.Addr().String())
	off, app := newOffloadedApp(t, conn, Options{
		LocalFallback: true,
		Models:        []ModelToSend{{Name: "tiny", Net: tinyModel(t)}},
	})
	off.StartPreSend()
	// The pre-send rides the torn first proxy connection and fails; the
	// offloader recovers via redial on the offload path below.
	off.WaitForAcks() //nolint:errcheck

	// First event: the conn is broken from the torn pre-send (or breaks on
	// this offload), the offloader redials and falls back locally.
	if got := classifyOnce(t, off, app, 11); got == "" {
		t.Fatal("no result from fallback execution")
	}
	st := off.Stats()
	if st.Redials != 1 {
		t.Errorf("redials = %d, want 1", st.Redials)
	}
	if st.LocalFallbacks != 1 {
		t.Errorf("local fallbacks = %d, want 1", st.LocalFallbacks)
	}
	if st.Offloads != 0 {
		t.Errorf("offloads = %d, want 0 after torn response", st.Offloads)
	}
	if conn.Broken() {
		t.Error("conn still broken after redial")
	}

	// Second event: the redialed conn is clean, offloading works again.
	if got := classifyOnce(t, off, app, 12); got == "" {
		t.Fatal("no result from offloaded execution")
	}
	if st := off.Stats(); st.Offloads != 1 {
		t.Errorf("offloads after redial = %d, want 1", st.Offloads)
	}
}

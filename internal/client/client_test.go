package client

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"websnap/internal/mlapp"
	"websnap/internal/models"
	"websnap/internal/nn"
	"websnap/internal/protocol"
	"websnap/internal/webapp"
)

func tinyModel(t *testing.T) *nn.Network {
	t.Helper()
	m, err := models.BuildTinyNet("tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func tinyApp(t *testing.T) *webapp.App {
	t.Helper()
	app, err := mlapp.NewFullApp("a", "tiny", tinyModel(t), []string{"x", "y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// scriptedServer answers each incoming request with the next scripted
// response ("echo-error", "ack", "wrong-type", "garbage", "close").
func scriptedServer(t *testing.T, script ...string) *Conn {
	t.Helper()
	clientSide, serverSide := net.Pipe()
	go func() {
		defer serverSide.Close()
		for _, action := range script {
			if _, err := protocol.Read(serverSide); err != nil {
				return
			}
			switch action {
			case "ack":
				msg, _ := protocol.Encode(protocol.MsgAck,
					protocol.AckHeader{AppID: "a", ModelName: "tiny"}, nil)
				protocol.Write(serverSide, msg)
			case "echo-error":
				msg, _ := protocol.Encode(protocol.MsgError,
					protocol.ErrorHeader{Message: "scripted failure"}, nil)
				protocol.Write(serverSide, msg)
			case "wrong-type":
				msg, _ := protocol.Encode(protocol.MsgInstallDone,
					protocol.InstallDoneHeader{}, nil)
				protocol.Write(serverSide, msg)
			case "wrong-name-ack":
				msg, _ := protocol.Encode(protocol.MsgAck,
					protocol.AckHeader{AppID: "a", ModelName: "other"}, nil)
				protocol.Write(serverSide, msg)
			case "garbage":
				serverSide.Write([]byte("this is not a frame at all......"))
			case "close":
				return
			}
		}
	}()
	conn := NewConn(clientSide)
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestNewOffloaderValidation(t *testing.T) {
	app := tinyApp(t)
	conn := scriptedServer(t)
	if _, err := NewOffloader(nil, conn, Options{}); err == nil {
		t.Error("nil app should fail")
	}
	if _, err := NewOffloader(app, nil, Options{}); err == nil {
		t.Error("nil conn should fail")
	}
	if _, err := NewOffloader(app, conn, Options{
		Models:        []ModelToSend{{Name: "m", Net: tinyModel(t)}},
		ExcludeModels: []string{"m"},
	}); err == nil {
		t.Error("model both pre-sent and excluded should fail")
	}
}

func TestShouldOffload(t *testing.T) {
	off, err := NewOffloader(tinyApp(t), scriptedServer(t), Options{
		OffloadEventTypes: []string{"click", "front_complete"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !off.ShouldOffload(webapp.Event{Type: "click"}) {
		t.Error("click should offload")
	}
	if off.ShouldOffload(webapp.Event{Type: "load"}) {
		t.Error("load should not offload")
	}
}

func TestStepEmptyQueue(t *testing.T) {
	off, err := NewOffloader(tinyApp(t), scriptedServer(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	processed, err := off.Step()
	if err != nil || processed {
		t.Errorf("empty queue: processed=%v err=%v", processed, err)
	}
}

func TestLocalEventsRunLocally(t *testing.T) {
	app := tinyApp(t)
	off, err := NewOffloader(app, scriptedServer(t), Options{
		OffloadEventTypes: []string{"click"},
	})
	if err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventLoad,
		Payload: mlapp.SyntheticImage(3*16*16, 1)})
	processed, err := off.Step()
	if err != nil || !processed {
		t.Fatalf("load step: processed=%v err=%v", processed, err)
	}
	if _, ok := app.Global(mlapp.GlobalImage); !ok {
		t.Error("load handler did not run locally")
	}
	if st := off.Stats(); st.Offloads != 0 {
		t.Error("load must not offload")
	}
}

func TestServerErrorPropagates(t *testing.T) {
	app := tinyApp(t)
	off, err := NewOffloader(app, scriptedServer(t, "echo-error"), Options{
		OffloadEventTypes: []string{"click"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, 1)); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
	_, err = off.Step()
	if !errors.Is(err, ErrServerError) {
		t.Errorf("err = %v, want ErrServerError", err)
	}
	if !strings.Contains(err.Error(), "scripted failure") {
		t.Errorf("err = %v, want the server's message", err)
	}
}

func TestUnexpectedResponseType(t *testing.T) {
	app := tinyApp(t)
	// The app has one model, not yet acked, so Offload first pre-sends
	// (gets an ack) and then ships the snapshot (gets a wrong-type
	// response).
	off, err := NewOffloader(app, scriptedServer(t, "ack", "wrong-type"), Options{
		OffloadEventTypes: []string{"click"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, 1)); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
	if _, err = off.Step(); err == nil || !strings.Contains(err.Error(), "unexpected response") {
		t.Errorf("err = %v, want unexpected-response error", err)
	}
}

func TestGarbageResponse(t *testing.T) {
	conn := scriptedServer(t, "garbage")
	err := conn.PreSendModel("a", "tiny", tinyModel(t), false)
	if err == nil {
		t.Error("garbage frame should fail")
	}
}

func TestPreSendWrongAckName(t *testing.T) {
	conn := scriptedServer(t, "wrong-name-ack")
	err := conn.PreSendModel("a", "tiny", tinyModel(t), false)
	if err == nil || !strings.Contains(err.Error(), "ACK names") {
		t.Errorf("err = %v, want ACK-name mismatch", err)
	}
}

func TestWaitForAcksAggregatesErrors(t *testing.T) {
	app := tinyApp(t)
	off, err := NewOffloader(app, scriptedServer(t, "echo-error"), Options{
		Models: []ModelToSend{{Name: "tiny", Net: tinyModel(t)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	off.StartPreSend()
	off.StartPreSend() // idempotent
	if err := off.WaitForAcks(); err == nil {
		t.Error("failed pre-send should surface from WaitForAcks")
	}
	if off.ModelAcked("tiny") {
		t.Error("failed model must not be marked acked")
	}
}

func TestRequestTimeout(t *testing.T) {
	// A server that accepts the request but never answers.
	clientSide, serverSide := net.Pipe()
	go func() {
		defer serverSide.Close()
		protocol.Read(serverSide) //nolint:errcheck // drain the request...
		// ...then stay silent until the client gives up and closes.
		buf := make([]byte, 1)
		for {
			if _, err := serverSide.Read(buf); err != nil {
				return
			}
		}
	}()
	conn := NewConn(clientSide)
	t.Cleanup(func() { conn.Close() })
	conn.SetRequestTimeout(100 * time.Millisecond)
	start := time.Now()
	err := conn.PreSendModel("a", "tiny", tinyModel(t), false)
	if err == nil {
		t.Fatal("hung server should time out")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("timeout took %v, want ~100ms", elapsed)
	}
}

func TestRunQuiesceError(t *testing.T) {
	app := tinyApp(t)
	off, err := NewOffloader(app, scriptedServer(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Two pending local events, budget of one.
	app.DispatchEvent(webapp.Event{Target: "x", Type: "noop"})
	app.DispatchEvent(webapp.Event{Target: "x", Type: "noop"})
	if _, err := off.Run(1); err == nil {
		t.Error("Run under budget should report non-quiescence")
	}
}

func TestOverloadedErrorAndLoadHint(t *testing.T) {
	clientSide, serverSide := net.Pipe()
	go func() {
		defer serverSide.Close()
		if _, err := protocol.Read(serverSide); err != nil {
			return
		}
		msg, _ := protocol.Encode(protocol.MsgError, protocol.ErrorHeader{
			Message:    "queue full",
			Overloaded: true,
			Load: &protocol.LoadHint{
				QueueDepth: 8, QueueCap: 8, Workers: 2, Busy: 2,
				QueueingMillis: 250, Saturated: true,
			},
		}, nil)
		protocol.Write(serverSide, msg)
	}()
	conn := NewConn(clientSide)
	defer conn.Close()
	_, _, err := conn.OffloadSnapshot("a", []byte("snap"), false)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if !errors.Is(err, ErrServerError) {
		t.Errorf("overload error should also match ErrServerError, got %v", err)
	}
	hint, at, ok := conn.LastLoad()
	if !ok {
		t.Fatal("LastLoad not recorded from error header")
	}
	if !hint.Saturated || hint.QueueingDelay() != 250*time.Millisecond {
		t.Errorf("hint = %+v", hint)
	}
	if at.IsZero() {
		t.Error("load timestamp not set")
	}
}

func TestPingCollectsLoad(t *testing.T) {
	clientSide, serverSide := net.Pipe()
	go func() {
		defer serverSide.Close()
		msg, err := protocol.Read(serverSide)
		if err != nil || msg.Type != protocol.MsgPing {
			return
		}
		var hdr protocol.PingHeader
		if protocol.DecodeHeader(msg, &hdr) != nil || hdr.Hints < protocol.HintLoadV1 {
			return
		}
		pong, _ := protocol.Encode(protocol.MsgPong, protocol.PongHeader{
			Installed: true,
			Load:      &protocol.LoadHint{Workers: 4, QueueingMillis: 10},
		}, nil)
		protocol.Write(serverSide, pong)
	}()
	conn := NewConn(clientSide)
	defer conn.Close()
	installed, load, err := conn.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if !installed || load == nil || load.Workers != 4 {
		t.Errorf("installed=%v load=%+v", installed, load)
	}
	if _, _, ok := conn.LastLoad(); !ok {
		t.Error("ping did not record the load hint")
	}
}

func TestLoadSheddingKeepsEventLocal(t *testing.T) {
	// A fresh saturated hint must keep offloadable events on the client
	// without any network round trip: the scripted server answers nothing.
	clientSide, serverSide := net.Pipe()
	defer serverSide.Close()
	conn := NewConn(clientSide)
	defer conn.Close()
	conn.noteLoad(&protocol.LoadHint{Saturated: true, QueueingMillis: 5000})

	app := tinyApp(t)
	off, err := NewOffloader(app, conn, Options{
		OffloadEventTypes: []string{mlapp.EventClick},
		MaxQueueingDelay:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, 1)); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
	if _, err := off.Run(4); err != nil {
		t.Fatal(err)
	}
	if got := mlapp.Result(app); got == "" {
		t.Fatal("local execution produced no result")
	}
	st := off.Stats()
	if st.LoadSheds != 1 {
		t.Errorf("LoadSheds = %d, want 1", st.LoadSheds)
	}
	if st.Offloads != 0 || st.LocalFallbacks != 0 {
		t.Errorf("unexpected stats %+v", st)
	}
}

func TestStaleLoadHintIgnored(t *testing.T) {
	clientSide, serverSide := net.Pipe()
	defer serverSide.Close()
	conn := NewConn(clientSide)
	defer conn.Close()
	conn.noteLoad(&protocol.LoadHint{Saturated: true})
	conn.loadMu.Lock()
	conn.loadAt = time.Now().Add(-time.Minute)
	conn.loadMu.Unlock()
	off, err := NewOffloader(tinyApp(t), conn, Options{
		OffloadEventTypes: []string{mlapp.EventClick},
		MaxQueueingDelay:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if shed, _ := off.shouldShed(); shed {
		t.Error("stale hint should not shed")
	}
}

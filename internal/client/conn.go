// Package client implements the client-device side of snapshot-based
// offloading: the synchronous RPC channel to an edge server, asynchronous
// model pre-sending with ACK tracking (§III.B.1), and the Offloader that
// intercepts designated events, ships snapshots, and applies result
// snapshots back into the running app (§III.A).
package client

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"websnap/internal/nn"
	"websnap/internal/protocol"
	"websnap/internal/trace"
)

// DefaultMaxStreams is the concurrent logical-stream cap NegotiateMux
// applies when the caller does not name one.
const DefaultMaxStreams = 64

// ErrServerError wraps a MsgError response from the edge server.
var ErrServerError = errors.New("client: edge server error")

// ErrOverloaded wraps a MsgError response whose header carries the overload
// marker: the request was fine, but the server's admission queue is full.
// The client should execute locally (or pick another server) instead of
// retrying. ErrOverloaded errors also match ErrServerError.
var ErrOverloaded = errors.New("client: edge server overloaded")

// ErrConnBroken marks a connection whose frame stream is no longer
// trustworthy: a previous request failed mid-I/O (deadline expiry while a
// frame was in flight, a short write, a torn read), so the next bytes on
// the wire may belong to a stale response. Reusing such a connection would
// decode garbage as a frame header; every subsequent request fails fast
// with this error instead. Callers should Redial (or dial a fresh Conn) and
// may fall back to local execution meanwhile.
var ErrConnBroken = errors.New("client: connection broken mid-frame")

// Conn is a synchronous request/response channel to an edge server's
// offloading program. It serializes requests with a mutex, so one Conn may
// be shared by the pre-send goroutine and the offloading path.
//
// Every request advertises the load-hint extension; servers that support it
// attach their scheduling load to responses, which the Conn records for
// LastLoad. Old servers ignore the advertisement.
type Conn struct {
	mu      sync.Mutex
	rw      net.Conn
	seq     uint64
	timeout time.Duration
	// addr is the dialed address; empty for Conns wrapped around an
	// existing net.Conn, which cannot Redial.
	addr string
	// wrap, when set, decorates every dialed socket (netem shaping, chaos
	// injection); applying it inside Redial keeps the decoration across
	// reconnects.
	wrap func(net.Conn) net.Conn
	// broken marks a desynced frame stream (see ErrConnBroken).
	broken bool

	// mux, once NegotiateMux succeeds, switches the Conn to multiplexed
	// operation: every request carries HintMuxV1 plus a unique Seq, writes
	// are serialized under mu but responses are read by a single reader
	// goroutine and routed to the waiting request by Seq, so many logical
	// streams share this one connection concurrently.
	mux bool
	// muxSlots bounds in-flight logical streams (per-stream flow control);
	// acquiring a slot blocks when the window is full.
	muxSlots chan struct{}
	// pending maps an in-flight request's Seq to its reply channel.
	pending map[uint64]chan muxReply
	// readerDone is closed when the current reader goroutine exits.
	readerDone chan struct{}

	// telemetry, once EnableTelemetry is called, raises every request's
	// advertised hint floor to HintTelemetryV1 so servers answer with
	// cross-process spans and the mux stream-wait report. Off by default:
	// an unenabled Conn's request bytes stay identical to older clients.
	telemetry bool

	// rec, when set, receives the demux routing latency of every
	// multiplexed response (trace.StageDemux) — the time between a frame
	// leaving protocol.Read and its delivery to the waiting stream.
	rec atomic.Pointer[trace.Recorder]

	loadMu   sync.Mutex
	lastLoad *protocol.LoadHint
	loadAt   time.Time
}

// muxReply is one demultiplexed response (or the terminal error that
// killed the stream).
type muxReply struct {
	msg protocol.Message
	err error
}

// noteLoad records a load hint found in a response header.
func (c *Conn) noteLoad(h *protocol.LoadHint) {
	if h == nil {
		return
	}
	c.loadMu.Lock()
	c.lastLoad = h
	c.loadAt = time.Now()
	c.loadMu.Unlock()
}

// LastLoad returns the most recent load hint received from the server and
// when it arrived. ok is false when no response has carried one (old
// server, or no requests yet).
func (c *Conn) LastLoad() (hint protocol.LoadHint, at time.Time, ok bool) {
	c.loadMu.Lock()
	defer c.loadMu.Unlock()
	if c.lastLoad == nil {
		return protocol.LoadHint{}, time.Time{}, false
	}
	return *c.lastLoad, c.loadAt, true
}

// SetRequestTimeout bounds each request/response round trip; a server that
// stops responding yields an error instead of a hang. Zero (the default)
// disables the bound. Large model pre-sends over slow links need a
// correspondingly generous timeout.
func (c *Conn) SetRequestTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// NewConn wraps an established connection (possibly netem-shaped).
func NewConn(rw net.Conn) *Conn {
	return &Conn{rw: rw}
}

// Dial connects to an edge server at addr over TCP. The Conn remembers the
// address, so a broken connection can be re-established with Redial.
func Dial(addr string) (*Conn, error) {
	return DialWrapped(addr, nil)
}

// DialWrapped connects like Dial but passes every dialed socket through
// wrap (netem shaping, fault injection) before framing. Unlike wrapping the
// socket yourself and using NewConn, the decoration survives Redial: each
// reconnect dials raw TCP and re-applies wrap to the fresh socket. A nil
// wrap is identity.
func DialWrapped(addr string, wrap func(net.Conn) net.Conn) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	if wrap != nil {
		c = wrap(c)
	}
	conn := NewConn(c)
	conn.addr = addr
	conn.wrap = wrap
	return conn, nil
}

// Addr returns the dialed server address — the server identity recorded on
// offload decisions. Empty for Conns wrapped around an established
// connection.
func (c *Conn) Addr() string { return c.addr }

// Close closes the underlying connection. On a multiplexed Conn it also
// joins the reader goroutine, so callers (and goroutine-leak checks) see
// a fully quiesced Conn when Close returns.
func (c *Conn) Close() error {
	c.mu.Lock()
	err := c.rw.Close()
	done := c.readerDone
	c.mu.Unlock()
	if done != nil {
		<-done
	}
	return err
}

// Broken reports whether the connection has been marked desynced; all
// further requests fail with ErrConnBroken until Redial succeeds.
func (c *Conn) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// markBroken flags the frame stream as desynced outside roundTrip (e.g. a
// response whose Seq belongs to a different request).
func (c *Conn) markBroken() {
	c.mu.Lock()
	c.broken = true
	c.mu.Unlock()
}

// Redial re-establishes a dialed connection in place: the old socket is
// closed, a fresh one replaces it, and the broken mark is cleared. Conns
// wrapped around an existing net.Conn (NewConn) cannot redial. The server's
// per-app state (pre-sent models, delta bases) is keyed by app ID, not by
// connection, so it survives the reconnect.
func (c *Conn) Redial() error {
	c.mu.Lock()
	if c.addr == "" {
		c.mu.Unlock()
		return fmt.Errorf("client: cannot redial a wrapped connection: %w", ErrConnBroken)
	}
	if !c.mux {
		// Serial Conns swap the socket entirely under the lock, mutually
		// exclusive with any in-flight round trip.
		defer c.mu.Unlock()
		fresh, err := net.Dial("tcp", c.addr)
		if err != nil {
			return fmt.Errorf("client: redial %s: %w", c.addr, err)
		}
		if c.wrap != nil {
			fresh = c.wrap(fresh)
		}
		c.rw.Close() //nolint:errcheck // the old socket is already suspect
		c.rw = fresh
		c.broken = false
		return nil
	}
	if !c.broken {
		// On a shared multiplexed Conn many streams race to recover; the
		// first Redial to finish heals the connection for all of them.
		c.mu.Unlock()
		return nil
	}
	old := c.rw
	oldDone := c.readerDone
	c.mu.Unlock()

	// Retire the old socket's reader before splicing in a fresh socket:
	// closing the socket fails its pending streams and stops the reader, so
	// no goroutine is still draining stale frames when the new one starts.
	old.Close() //nolint:errcheck // the old socket is already suspect
	if oldDone != nil {
		<-oldDone
	}

	fresh, err := net.Dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("client: redial %s: %w", c.addr, err)
	}
	if c.wrap != nil {
		fresh = c.wrap(fresh)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rw != old && !c.broken {
		// A concurrent Redial already installed a healthy socket; keep it.
		fresh.Close() //nolint:errcheck // redundant socket
		return nil
	}
	c.rw = fresh
	c.broken = false
	c.readerDone = make(chan struct{})
	go c.readLoop(fresh, c.readerDone)
	return nil
}

// roundTrip sends one request and reads one response.
//
// Any I/O failure — notably a deadline expiring while a frame is mid-wire —
// leaves the stream position unknown, so the Conn is marked broken: the
// next read could otherwise interpret the stale response's leftover bytes
// as a frame header and decode garbage. A clean MsgError response is a
// complete frame and does NOT break the connection.
func (c *Conn) roundTrip(req protocol.Message) (protocol.Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return protocol.Message{}, ErrConnBroken
	}
	if c.timeout > 0 {
		if err := c.rw.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return protocol.Message{}, fmt.Errorf("client: set deadline: %w", err)
		}
		defer c.rw.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	if err := protocol.Write(c.rw, req); err != nil {
		c.broken = true
		return protocol.Message{}, fmt.Errorf("%w: %w", ErrConnBroken, err)
	}
	resp, err := protocol.Read(c.rw)
	if err != nil {
		c.broken = true
		return protocol.Message{}, fmt.Errorf("%w: %w", ErrConnBroken, err)
	}
	return c.checkError(resp)
}

// checkError turns a MsgError response into the matching client error; any
// other response passes through. A clean error frame is a complete frame,
// so it never breaks the connection.
func (c *Conn) checkError(resp protocol.Message) (protocol.Message, error) {
	if resp.Type != protocol.MsgError {
		return resp, nil
	}
	var hdr protocol.ErrorHeader
	if err := protocol.DecodeHeader(resp, &hdr); err != nil {
		return protocol.Message{}, err
	}
	c.noteLoad(hdr.Load)
	err := fmt.Errorf("%w: %s", ErrServerError, hdr.Message)
	if hdr.Overloaded {
		err = fmt.Errorf("%w: %w: %s", ErrServerError, ErrOverloaded, hdr.Message)
	}
	if hdr.ChainHop > 0 {
		// A chain failure names the hop that died; keep the attribution on
		// the error so the planner can exclude that server and re-plan.
		err = &ChainHopError{Hop: hdr.ChainHop, Err: err}
	}
	return protocol.Message{}, err
}

// EnableTelemetry opts this Conn into the cross-process telemetry
// extension: every subsequent request advertises at least HintTelemetryV1,
// so capable servers answer with span trees (pre-send resolution, fleet
// hops) and the mux stream-wait report. Old servers ignore the higher hint
// and answer exactly as before, so enabling it is always safe; it is off
// by default so an unenabled client's wire bytes stay byte-identical.
func (c *Conn) EnableTelemetry() {
	c.mu.Lock()
	c.telemetry = true
	c.mu.Unlock()
}

// TelemetryEnabled reports whether EnableTelemetry has been called.
func (c *Conn) TelemetryEnabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.telemetry
}

// SetTraceRecorder wires a recorder into the Conn's demultiplexer: each
// multiplexed response's routing latency lands in its StageDemux
// histogram. The offloader wires its own recorder here so client digests
// cover the demux stage.
func (c *Conn) SetTraceRecorder(rec *trace.Recorder) { c.rec.Store(rec) }

// raiseTelemetry lifts a request's hint level to the telemetry floor when
// the extension is enabled.
func (c *Conn) raiseTelemetry(hints int) int {
	if c.TelemetryEnabled() && hints < protocol.HintTelemetryV1 {
		return protocol.HintTelemetryV1
	}
	return hints
}

// Muxed reports whether stream multiplexing has been negotiated on this
// connection.
func (c *Conn) Muxed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mux
}

// nextSeq allocates a fresh logical-stream ID.
func (c *Conn) nextSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	return c.seq
}

// NegotiateMux probes the server for the stream-multiplexing extension
// (HintMuxV1) with one ping and, when the pong advertises support, switches
// the Conn to multiplexed operation: requests from any number of goroutines
// are interleaved on this one connection, each as its own logical stream,
// with at most maxStreams (default DefaultMaxStreams) in flight at once.
// Returns false against servers that predate the extension — the Conn then
// keeps its serial one-request-at-a-time behavior, byte-identical to a
// client that never negotiated.
//
// Negotiate before sharing the Conn across goroutines; the probe itself
// uses the serial path.
func (c *Conn) NegotiateMux(maxStreams int) (bool, error) {
	if maxStreams <= 0 {
		maxStreams = DefaultMaxStreams
	}
	req, err := protocol.Encode(protocol.MsgPing, protocol.PingHeader{Hints: protocol.HintMuxV1}, nil)
	if err != nil {
		return false, err
	}
	resp, err := c.roundTrip(req)
	if err != nil {
		return false, fmt.Errorf("client: mux negotiate: %w", err)
	}
	if resp.Type != protocol.MsgPong {
		return false, fmt.Errorf("client: mux negotiate: unexpected response %s", resp.Type)
	}
	var hdr protocol.PongHeader
	if err := protocol.DecodeHeader(resp, &hdr); err != nil {
		return false, err
	}
	c.noteLoad(hdr.Load)
	if !hdr.Mux {
		return false, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.mux {
		c.mux = true
		c.muxSlots = make(chan struct{}, maxStreams)
		c.pending = make(map[uint64]chan muxReply)
		c.readerDone = make(chan struct{})
		go c.readLoop(c.rw, c.readerDone)
	}
	return true, nil
}

// readLoop is the multiplexed Conn's single reader: it decodes each
// response's stream ID (every response header carries the shared "seq" key)
// and hands the frame to the waiting request. A read error, an undecodable
// header, or a response for no pending stream all mean the frame stream can
// no longer be trusted, so every pending request fails and the loop exits;
// Redial starts a fresh loop on the replacement socket.
func (c *Conn) readLoop(rw net.Conn, done chan struct{}) {
	defer close(done)
	for {
		resp, err := protocol.Read(rw)
		if err != nil {
			c.failPending(rw, fmt.Errorf("%w: %w", ErrConnBroken, err))
			return
		}
		// Everything after the read is demux routing: header peek, stream
		// lookup, handoff. Recording it separately from the wire keeps a
		// congested reader (many streams racing the single demultiplexer)
		// visible in the stage histograms.
		routeStart := time.Now()
		var env protocol.MuxEnvelope
		if err := json.Unmarshal(resp.Header, &env); err != nil {
			c.failPending(rw, fmt.Errorf("%w: undecodable response header: %w", ErrConnBroken, err))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[env.Seq]
		if ok {
			delete(c.pending, env.Seq)
		}
		c.mu.Unlock()
		if !ok {
			c.failPending(rw, fmt.Errorf("%w: response for unknown stream %d", ErrConnBroken, env.Seq))
			return
		}
		ch <- muxReply{msg: resp}
		if rec := c.rec.Load(); rec != nil {
			rec.Observe(trace.StageDemux, time.Since(routeStart))
		}
	}
}

// failPending marks the Conn broken and delivers err to every in-flight
// stream. rw names the socket the failure belongs to: a failure reported
// for an already-retired socket is a no-op — its streams were drained when
// its reader exited, and the streams now pending belong to the healthy
// replacement a concurrent Redial installed.
func (c *Conn) failPending(rw net.Conn, err error) {
	c.mu.Lock()
	if c.rw != rw {
		c.mu.Unlock()
		return
	}
	c.broken = true
	pending := c.pending
	c.pending = make(map[uint64]chan muxReply)
	c.mu.Unlock()
	for _, ch := range pending {
		ch <- muxReply{err: err}
	}
}

// muxRoundTrip runs one logical stream on a multiplexed Conn: acquire a
// stream slot, register the reply channel under seq, write the frame (writes
// stay serialized under mu), then wait for the reader to deliver the
// matching response. A request timeout conservatively breaks the whole
// connection — the response may still arrive later, and with it any frame
// boundary guarantee for the siblings — exactly the serial path's deadline
// semantics.
func (c *Conn) muxRoundTrip(req protocol.Message, seq uint64) (protocol.Message, error) {
	c.muxSlots <- struct{}{}
	defer func() { <-c.muxSlots }()

	ch := make(chan muxReply, 1)
	c.mu.Lock()
	if c.broken {
		c.mu.Unlock()
		return protocol.Message{}, ErrConnBroken
	}
	c.pending[seq] = ch
	timeout := c.timeout
	rw := c.rw
	err := protocol.Write(rw, req)
	c.mu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		// A short write desyncs the shared stream for every sibling too:
		// close the socket this frame went out on (not c.rw, which a
		// concurrent Redial may have already replaced) so its reader
		// unwinds them all.
		rw.Close() //nolint:errcheck // already failing
		c.failPending(rw, fmt.Errorf("%w: %w", ErrConnBroken, err))
		return protocol.Message{}, fmt.Errorf("%w: %w", ErrConnBroken, err)
	}

	var expired <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		expired = timer.C
	}
	select {
	case r := <-ch:
		if r.err != nil {
			return protocol.Message{}, r.err
		}
		return c.checkError(r.msg)
	case <-expired:
		c.mu.Lock()
		delete(c.pending, seq)
		if c.rw == rw {
			// Only break the connection the request is actually stuck on; a
			// concurrent Redial may have installed a healthy replacement.
			c.broken = true
		}
		c.mu.Unlock()
		rw.Close() //nolint:errcheck // deliberate teardown
		return protocol.Message{}, fmt.Errorf("%w: request %d timed out after %v", ErrConnBroken, seq, timeout)
	}
}

// roundTripSeq dispatches one request: the multiplexed path when negotiated
// (seq identifies the logical stream), the serial path otherwise.
func (c *Conn) roundTripSeq(req protocol.Message, seq uint64) (protocol.Message, error) {
	if c.Muxed() {
		return c.muxRoundTrip(req, seq)
	}
	return c.roundTrip(req)
}

// streamHints resolves one request's hint level and stream ID: on a
// multiplexed Conn every request advertises HintMuxV1 (which implies all
// lower extensions) and carries a fresh stream ID; serially the request
// keeps its historical hint level and the bytes stay identical to a client
// that never negotiated. EnableTelemetry raises either level to
// HintTelemetryV1.
func (c *Conn) streamHints(serialHints int) (hints int, seq uint64) {
	if c.Muxed() {
		return c.raiseTelemetry(protocol.HintMuxV1), c.nextSeq()
	}
	return c.raiseTelemetry(serialHints), 0
}

// Ping probes the server's install state and, when the server supports the
// load-hint extension, its current scheduling load.
func (c *Conn) Ping() (installed bool, load *protocol.LoadHint, err error) {
	hints, seq := c.streamHints(protocol.HintLoadV1)
	req, err := protocol.Encode(protocol.MsgPing, protocol.PingHeader{Hints: hints, Seq: seq}, nil)
	if err != nil {
		return false, nil, err
	}
	resp, err := c.roundTripSeq(req, seq)
	if err != nil {
		return false, nil, fmt.Errorf("client: ping: %w", err)
	}
	if resp.Type != protocol.MsgPong {
		return false, nil, fmt.Errorf("client: ping: unexpected response %s", resp.Type)
	}
	var hdr protocol.PongHeader
	if err := protocol.DecodeHeader(resp, &hdr); err != nil {
		return false, nil, err
	}
	c.noteLoad(hdr.Load)
	return hdr.Installed, hdr.Load, nil
}

// PreSendModel ships one model (descriptor + weights) to the edge server
// and waits for the ACK. Set partial when sending only the rear part of a
// split DNN (the front is withheld for privacy, §III.B.2).
func (c *Conn) PreSendModel(appID, name string, model *nn.Network, partial bool) error {
	spec, err := nn.EncodeSpec(model)
	if err != nil {
		return fmt.Errorf("client: model %q: %w", name, err)
	}
	var weights bytes.Buffer
	if err := model.EncodeWeights(&weights); err != nil {
		return fmt.Errorf("client: model %q: %w", name, err)
	}
	hints, seq := c.streamHints(protocol.HintCRCV1)
	req, err := protocol.Encode(protocol.MsgModelPreSend, protocol.ModelPreSendHeader{
		AppID: appID, ModelName: name, Spec: spec, Partial: partial,
		Hints: hints, Seq: seq,
		BodyCRC: protocol.BodyChecksum(weights.Bytes()),
	}, weights.Bytes())
	if err != nil {
		return err
	}
	resp, err := c.roundTripSeq(req, seq)
	if err != nil {
		return fmt.Errorf("client: pre-send %q: %w", name, err)
	}
	if resp.Type != protocol.MsgAck {
		return fmt.Errorf("client: pre-send %q: unexpected response %s", name, resp.Type)
	}
	var ack protocol.AckHeader
	if err := protocol.DecodeHeader(resp, &ack); err != nil {
		return err
	}
	c.noteLoad(ack.Load)
	if ack.ModelName != name {
		return fmt.Errorf("client: pre-send %q: ACK names %q", name, ack.ModelName)
	}
	return nil
}

// PreSendModelRef offers a model to the edge server by content reference:
// the header carries the spec and the model's fleet blob key
// (nn.Fingerprint), but no weight bytes. A fleet server resolves the blob
// from its cache or a peer and ACKs like a full pre-send; needBlob=true
// means it could not (client should retry with PreSendModel). Servers that
// predate the extension fail to decode the empty body and answer an error
// frame, which is reported as needBlob too — the reference attempt is
// always safe, it just wastes one round trip against an old server.
func (c *Conn) PreSendModelRef(appID, name string, model *nn.Network, partial bool) (needBlob bool, err error) {
	needBlob, _, err = c.PreSendModelRefTraced(appID, name, model, partial, "")
	return needBlob, err
}

// PreSendModelRefTraced is PreSendModelRef with cross-process trace
// propagation: traceID is stamped on the request (implying
// HintTelemetryV1), and the server's resolve span — covering its registry
// locate and peer fetches — comes back alongside the NeedBlob verdict, so
// a roam handoff's pre-sends join the client's trace under one ID. Empty
// traceID degrades to the untraced request bytes.
func (c *Conn) PreSendModelRefTraced(appID, name string, model *nn.Network, partial bool, traceID string) (needBlob bool, span *protocol.SpanNode, err error) {
	spec, err := nn.EncodeSpec(model)
	if err != nil {
		return false, nil, fmt.Errorf("client: model %q: %w", name, err)
	}
	key := nn.Fingerprint(model)
	if key == "" {
		return true, nil, nil
	}
	hints, seq := c.streamHints(protocol.HintFleetV1)
	if traceID != "" && hints < protocol.HintTelemetryV1 {
		hints = protocol.HintTelemetryV1
	}
	req, err := protocol.Encode(protocol.MsgModelPreSend, protocol.ModelPreSendHeader{
		AppID: appID, ModelName: name, Spec: spec, Partial: partial,
		Hints: hints, Seq: seq,
		BlobKey: key,
		RefOnly: true,
		TraceID: traceID,
	}, nil)
	if err != nil {
		return false, nil, err
	}
	resp, err := c.roundTripSeq(req, seq)
	if err != nil {
		if errors.Is(err, ErrServerError) && !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrConnBroken) {
			// A clean error frame: an old server choked on the empty body
			// (or refused the reference). The stream is intact — fall back
			// to a full upload.
			return true, nil, nil
		}
		return false, nil, fmt.Errorf("client: ref pre-send %q: %w", name, err)
	}
	if resp.Type != protocol.MsgAck {
		return false, nil, fmt.Errorf("client: ref pre-send %q: unexpected response %s", name, resp.Type)
	}
	var ack protocol.AckHeader
	if err := protocol.DecodeHeader(resp, &ack); err != nil {
		return false, nil, err
	}
	c.noteLoad(ack.Load)
	if ack.ModelName != name {
		return false, nil, fmt.Errorf("client: ref pre-send %q: ACK names %q", name, ack.ModelName)
	}
	return ack.NeedBlob, ack.Span, nil
}

// OffloadSnapshot ships an encoded snapshot and returns the encoded result
// snapshot. With compress set, the snapshot text travels DEFLATE-compressed
// and the server mirrors the encoding in its response; the returned bytes
// are always the plain result text. WireBytes reports the on-the-wire size
// of the shipped body.
func (c *Conn) OffloadSnapshot(appID string, encoded []byte, compress bool) (result []byte, wireBytes int64, err error) {
	reply, err := c.offloadBody(protocol.MsgSnapshot, protocol.MsgResultSnapshot, appID, encoded, compress)
	return reply.Result, reply.WireBytes, err
}

// OffloadSnapshotDelta ships an encoded snapshot delta and returns the
// encoded result delta. The server answers with an error when it no longer
// holds the base state; callers fall back to a full snapshot then.
func (c *Conn) OffloadSnapshotDelta(appID string, encoded []byte, compress bool) (result []byte, wireBytes int64, err error) {
	reply, err := c.offloadBody(protocol.MsgSnapshotDelta, protocol.MsgResultDelta, appID, encoded, compress)
	return reply.Result, reply.WireBytes, err
}

// offloadReply is one snapshot round trip's full outcome, including the
// measurements the trace pipeline consumes.
type offloadReply struct {
	// Result is the plain (decompressed) result body.
	Result []byte
	// WireBytes is the on-the-wire size of the shipped request body;
	// RespBytes the response frame's header+body size.
	WireBytes, RespBytes int64
	// Compress and Decompress are the client-side body codec times (zero
	// without compression).
	Compress, Decompress time.Duration
	// RoundTrip spans request write start to response read completion.
	RoundTrip time.Duration
	// TraceID is the ID stamped on the request; ServerTrace is the
	// server's span report (nil when the server predates the trace
	// extension).
	TraceID     string
	ServerTrace *protocol.ServerTrace
}

func (c *Conn) offloadBody(reqType, respType protocol.MsgType, appID string, encoded []byte, compress bool) (offloadReply, error) {
	seq := c.nextSeq()
	hints := protocol.HintCRCV1
	if c.Muxed() {
		hints = protocol.HintMuxV1
	}
	hints = c.raiseTelemetry(hints)
	var reply offloadReply
	reply.TraceID = trace.NewID()
	body := encoded
	encoding := protocol.EncodingRaw
	if compress {
		start := time.Now()
		compressed, err := protocol.CompressBody(encoded)
		if err != nil {
			return reply, err
		}
		reply.Compress = time.Since(start)
		body = compressed
		encoding = protocol.EncodingFlate
	}
	req, err := protocol.Encode(reqType, protocol.SnapshotHeader{
		AppID: appID, Seq: seq, Encoding: encoding,
		Hints: hints, TraceID: reply.TraceID,
		BodyCRC: protocol.BodyChecksum(body),
	}, body)
	if err != nil {
		return reply, err
	}
	rtStart := time.Now()
	resp, err := c.roundTripSeq(req, seq)
	reply.RoundTrip = time.Since(rtStart)
	if err != nil {
		return reply, fmt.Errorf("client: %s: %w", reqType, err)
	}
	if resp.Type != respType {
		return reply, fmt.Errorf("client: %s: unexpected response %s", reqType, resp.Type)
	}
	var hdr protocol.SnapshotHeader
	if err := protocol.DecodeHeader(resp, &hdr); err != nil {
		return reply, err
	}
	if hdr.Seq != seq {
		// A response for a different request means the frame stream has
		// slipped (a stale response from before a fault); nothing read from
		// this socket can be trusted anymore.
		c.markBroken()
		return reply, fmt.Errorf("%w: response seq %d for request %d", ErrConnBroken, hdr.Seq, seq)
	}
	if err := protocol.VerifyBody(resp.Body, hdr.BodyCRC); err != nil {
		// The frame itself was complete — the stream is still aligned — so
		// the connection stays usable; only this result is poisoned.
		return reply, fmt.Errorf("client: %s result: %w", reqType, err)
	}
	c.noteLoad(hdr.Load)
	reply.ServerTrace = hdr.ServerTrace
	reply.WireBytes = int64(len(body))
	reply.RespBytes = int64(len(resp.Header) + len(resp.Body))
	decStart := time.Now()
	plain, err := protocol.DecodeBody(resp.Body, hdr.Encoding)
	if err != nil {
		return reply, fmt.Errorf("client: %s result: %w", reqType, err)
	}
	if hdr.Encoding == protocol.EncodingFlate {
		reply.Decompress = time.Since(decStart)
	}
	reply.Result = plain
	return reply, nil
}

// InstallOverlay ships a compressed VM overlay for on-demand installation
// and returns the server-reported synthesis time.
func (c *Conn) InstallOverlay(baseImage string, blob []byte) (time.Duration, error) {
	hints, seq := c.streamHints(0)
	req, err := protocol.Encode(protocol.MsgInstallOverlay,
		protocol.InstallOverlayHeader{BaseImage: baseImage, Hints: hints, Seq: seq}, blob)
	if err != nil {
		return 0, err
	}
	resp, err := c.roundTripSeq(req, seq)
	if err != nil {
		return 0, fmt.Errorf("client: install: %w", err)
	}
	if resp.Type != protocol.MsgInstallDone {
		return 0, fmt.Errorf("client: install: unexpected response %s", resp.Type)
	}
	var hdr protocol.InstallDoneHeader
	if err := protocol.DecodeHeader(resp, &hdr); err != nil {
		return 0, err
	}
	return time.Duration(hdr.SynthesisMillis) * time.Millisecond, nil
}

package client

import (
	"net"
	"strings"
	"testing"

	"websnap/internal/edge"
	"websnap/internal/mlapp"
	"websnap/internal/testutil"
	"websnap/internal/trace"
	"websnap/internal/vmsynth"
	"websnap/internal/webapp"
)

// startEdge runs a real edge server for in-package integration tests.
func startEdge(t *testing.T, cfg edge.Config) string {
	t.Helper()
	if cfg.Catalog == nil {
		cat := webapp.NewCatalog()
		if err := cat.Add(mlapp.FullRegistry()); err != nil {
			t.Fatal(err)
		}
		if err := cat.Add(mlapp.PartialRegistry()); err != nil {
			t.Fatal(err)
		}
		cfg.Catalog = cat
	}
	srv, err := edge.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return ln.Addr().String()
}

func dialEdge(t *testing.T, addr string) *Conn {
	t.Helper()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func newOffloadedApp(t *testing.T, conn *Conn, opts Options) (*Offloader, *webapp.App) {
	t.Helper()
	model := tinyModel(t)
	app, err := mlapp.NewFullApp("client-int", "tiny", model, []string{"x", "y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.OffloadEventTypes) == 0 {
		opts.OffloadEventTypes = []string{mlapp.EventClick}
	}
	off, err := NewOffloader(app, conn, opts)
	if err != nil {
		t.Fatal(err)
	}
	return off, app
}

func classifyOnce(t *testing.T, off *Offloader, app *webapp.App, seed uint64) string {
	t.Helper()
	if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, seed)); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
	if _, err := off.Run(10); err != nil {
		t.Fatal(err)
	}
	return mlapp.Result(app)
}

func TestOffloadEndToEndInPackage(t *testing.T) {
	testutil.LeakCheck(t)
	addr := startEdge(t, edge.Config{Installed: true})
	conn := dialEdge(t, addr)
	off, app := newOffloadedApp(t, conn, Options{
		Models: []ModelToSend{{Name: "tiny", Net: tinyModel(t)}},
	})
	off.StartPreSend()
	if err := off.WaitForAcks(); err != nil {
		t.Fatal(err)
	}
	if got := classifyOnce(t, off, app, 1); got == "" {
		t.Fatal("no result")
	}
	st := off.Stats()
	if st.Offloads != 1 || st.LastSnapshotBytes == 0 || st.LastResultBytes == 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.LastTiming.Total() <= 0 {
		t.Error("timing not recorded")
	}
}

func TestOffloadDeltaInPackage(t *testing.T) {
	testutil.LeakCheck(t)
	addr := startEdge(t, edge.Config{Installed: true})
	conn := dialEdge(t, addr)
	off, app := newOffloadedApp(t, conn, Options{EnableDelta: true})
	classifyOnce(t, off, app, 1)
	classifyOnce(t, off, app, 2)
	st := off.Stats()
	if st.Offloads != 2 || st.DeltaOffloads != 1 {
		t.Errorf("stats = %+v, want 2 offloads / 1 delta", st)
	}
}

func TestRetargetInPackage(t *testing.T) {
	addrA := startEdge(t, edge.Config{Installed: true})
	addrB := startEdge(t, edge.Config{Installed: true})
	connA := dialEdge(t, addrA)
	off, app := newOffloadedApp(t, connA, Options{
		Models:      []ModelToSend{{Name: "tiny", Net: tinyModel(t)}},
		EnableDelta: true,
	})
	off.StartPreSend()
	if err := off.WaitForAcks(); err != nil {
		t.Fatal(err)
	}
	first := classifyOnce(t, off, app, 3)

	connB := dialEdge(t, addrB)
	if err := off.Retarget(connB); err != nil {
		t.Fatal(err)
	}
	if off.ModelAcked("tiny") {
		t.Error("retarget must clear ACK state")
	}
	if err := off.WaitForAcks(); err != nil {
		t.Fatalf("re-pre-send after retarget: %v", err)
	}
	if !off.ModelAcked("tiny") {
		t.Error("model should be re-acked at the new server")
	}
	if got := classifyOnce(t, off, app, 3); got != first {
		t.Errorf("result after retarget = %q, want %q", got, first)
	}
	if err := off.Retarget(nil); err == nil {
		t.Error("retarget to nil should fail")
	}
}

func TestInstallOverlayInPackage(t *testing.T) {
	syn := vmsynth.NewSynthesizer(vmsynth.BaseImage{Name: "base", Bytes: 1 << 20})
	addr := startEdge(t, edge.Config{Installed: false, Synthesizer: syn})
	conn := dialEdge(t, addr)
	data := []byte(strings.Repeat("system-bits-", 2048))
	overlay, err := vmsynth.BuildOverlay(vmsynth.Component{
		Name: "sys", RawBytes: int64(len(data)), CompressRatio: 0.4, Data: data,
	})
	if err != nil {
		t.Fatal(err)
	}
	synthTime, err := conn.InstallOverlay("base", overlay.Compressed)
	if err != nil {
		t.Fatal(err)
	}
	if synthTime < 0 {
		t.Errorf("synthesis time = %v", synthTime)
	}
	// Installing again on an installed server is a cheap no-op.
	if _, err := conn.InstallOverlay("base", overlay.Compressed); err != nil {
		t.Errorf("idempotent install failed: %v", err)
	}
}

// TestCompressedOffload: with Compress set, results are identical and the
// wire body is substantially smaller than the plain snapshot text.
func TestCompressedOffload(t *testing.T) {
	addr := startEdge(t, edge.Config{Installed: true})

	run := func(compress bool) (string, int64) {
		conn := dialEdge(t, addr)
		off, app := newOffloadedApp(t, conn, Options{Compress: compress})
		res := classifyOnce(t, off, app, 42)
		return res, off.Stats().LastSnapshotBytes
	}
	plainRes, plainBytes := run(false)
	compRes, compBytes := run(true)
	if plainRes != compRes {
		t.Errorf("compressed result %q != plain result %q", compRes, plainRes)
	}
	if compBytes*2 > plainBytes {
		t.Errorf("compressed body %d B should be well under plain %d B", compBytes, plainBytes)
	}
}

// TestCompressedDeltaOffload combines both wire optimizations.
func TestCompressedDeltaOffload(t *testing.T) {
	addr := startEdge(t, edge.Config{Installed: true})
	conn := dialEdge(t, addr)
	off, app := newOffloadedApp(t, conn, Options{Compress: true, EnableDelta: true})
	first := classifyOnce(t, off, app, 1)
	second := classifyOnce(t, off, app, 2)
	if first == "" || second == "" {
		t.Fatal("no results")
	}
	st := off.Stats()
	if st.DeltaOffloads != 1 {
		t.Errorf("stats = %+v, want 1 delta", st)
	}
}

// TestTraceSpansCoverRoundTrip checks the tracing pipeline end to end
// against a real server: every offload yields a merged client+server trace
// whose stages are all present and whose spans sum to the independently
// measured end-to-end offload time — nothing double-counted, nothing lost.
func TestTraceSpansCoverRoundTrip(t *testing.T) {
	addr := startEdge(t, edge.Config{Installed: true})
	conn := dialEdge(t, addr)
	off, app := newOffloadedApp(t, conn, Options{
		Models: []ModelToSend{{Name: "tiny", Net: tinyModel(t)}},
	})
	off.StartPreSend()
	if err := off.WaitForAcks(); err != nil {
		t.Fatal(err)
	}
	const offloads = 3
	for i := 0; i < offloads; i++ {
		classifyOnce(t, off, app, uint64(i+1))
	}

	st := off.Stats()
	tr := st.LastTrace
	if tr == nil {
		t.Fatal("no trace recorded")
	}
	if len(tr.ID) != 16 {
		t.Errorf("trace ID %q, want 16 hex digits", tr.ID)
	}
	for _, c := range tr.ID {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Errorf("trace ID %q contains non-hex digit %q", tr.ID, c)
			break
		}
	}
	for _, stage := range []trace.Stage{
		trace.StageCapture, trace.StageEncode, trace.StageWire,
		trace.StageQueue, trace.StageExecute, trace.StageResultWire,
		trace.StageRestore,
	} {
		if _, ok := tr.Get(stage); !ok {
			t.Errorf("trace missing stage %s", stage)
		}
	}
	if _, ok := tr.Get(trace.StageCompress); ok {
		t.Error("uncompressed offload recorded a compress span")
	}
	if tr.BatchSize < 1 {
		t.Errorf("trace batch size = %d, want >= 1", tr.BatchSize)
	}

	// The spans must account for the observed end-to-end time: the wire
	// stages are derived as round trip minus the server's report, so the
	// trace total and the wall-clock Timing total measure the same interval
	// two ways. Allow loose slack for clock-read jitter.
	e2e := st.LastTiming.Total()
	if total := tr.Total(); total < e2e/2 || total > 2*e2e {
		t.Errorf("trace total %v not within [0.5x, 2x] of measured end-to-end %v", total, e2e)
	}

	// The recorder aggregated every offload.
	rec := off.TraceRecorder()
	for _, stage := range []trace.Stage{trace.StageCapture, trace.StageExecute, trace.StageRestore} {
		if got := rec.Stage(stage).Count(); got != offloads {
			t.Errorf("recorder %s count = %d, want %d", stage, got, offloads)
		}
	}
	sums := rec.Summaries()
	if len(sums) == 0 {
		t.Fatal("recorder summaries empty")
	}
	for _, s := range sums {
		if s.P50 > s.P95 || s.P95 > s.P99 {
			t.Errorf("stage %s quantiles not ordered: %+v", s.Stage, s)
		}
	}
}

func TestLocalFallbackTimingInPackage(t *testing.T) {
	addr := startEdge(t, edge.Config{Installed: true})
	conn := dialEdge(t, addr)
	conn.Close()
	off, app := newOffloadedApp(t, conn, Options{LocalFallback: true})
	if got := classifyOnce(t, off, app, 5); got == "" {
		t.Fatal("fallback produced no result")
	}
	if st := off.Stats(); st.LocalFallbacks != 1 {
		t.Errorf("stats = %+v", st)
	}
}

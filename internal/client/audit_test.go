package client

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"websnap/internal/edge"
	"websnap/internal/obs"
	"websnap/internal/trace"
	"websnap/internal/webapp"
)

// flakyRegistries builds two registries sharing a CodeHash (name + handler
// names) but not behavior: the server-side variant fails every failEvery-th
// execution, the client-side variant always succeeds. Offloaded snapshots
// resolve to the flaky code at the server while local fallback runs the
// reliable copy — a deterministic server-error injector with no wire-level
// interference.
func flakyRegistries(execs *atomic.Int64, failEvery int64) (server, client *webapp.Registry) {
	server = webapp.NewRegistry("flakyapp")
	server.MustRegister("work", func(app *webapp.App, ev webapp.Event) error {
		if execs.Add(1)%failEvery == 0 {
			return errors.New("injected server failure")
		}
		return app.SetGlobal("done", "yes")
	})
	client = webapp.NewRegistry("flakyapp")
	client.MustRegister("work", func(app *webapp.App, ev webapp.Event) error {
		return app.SetGlobal("done", "yes")
	})
	return server, client
}

func isHex16(s string) bool {
	if len(s) != 16 {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// TestAuditFlakyServerConcurrent drives several concurrent offloaders —
// sharing one Auditor — through a real edge server whose handler fails
// every Nth execution. Run under -race. It pins the audit contract:
// exactly one decision per offload-eligible event, fallback-after-error
// attributed to the right error kind, and trace IDs on successful
// decisions joinable to the offloader's span recorder.
func TestAuditFlakyServerConcurrent(t *testing.T) {
	const (
		clients   = 4
		events    = 12
		failEvery = 5
	)
	var execs atomic.Int64
	serverReg, clientReg := flakyRegistries(&execs, failEvery)
	cat := webapp.NewCatalog()
	if err := cat.Add(serverReg); err != nil {
		t.Fatal(err)
	}
	addr := startEdge(t, edge.Config{Catalog: cat, Installed: true, Workers: 2})

	audit := obs.NewAuditor(obs.AuditorOptions{Keep: clients * events})
	offs := make([]*Offloader, clients)
	clientErrs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clientErrs[i] = func() error {
				app, err := webapp.NewApp(fmt.Sprintf("flaky-%d", i), clientReg)
				if err != nil {
					return err
				}
				if err := app.AddEventListener("b", "go", "work"); err != nil {
					return err
				}
				conn, err := Dial(addr)
				if err != nil {
					return err
				}
				defer conn.Close()
				off, err := NewOffloader(app, conn, Options{
					OffloadEventTypes: []string{"go"},
					LocalFallback:     true,
					Audit:             audit,
					PredictedOffload:  2 * time.Millisecond,
				})
				if err != nil {
					return err
				}
				offs[i] = off
				for n := 0; n < events; n++ {
					app.DispatchEvent(webapp.Event{Target: "b", Type: "go"})
					if _, err := off.Run(1); err != nil {
						return fmt.Errorf("event %d: %w", n, err)
					}
				}
				return nil
			}()
		}(i)
	}
	wg.Wait()
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	// Exactly one decision per offload-eligible event, across all clients.
	total := int64(clients * events)
	if got := audit.Total(); got != total {
		t.Fatalf("audit total = %d, want %d (one decision per event)", got, total)
	}
	// Every event reached the server exactly once (fallback re-runs
	// locally, it does not retry the offload), so the injected failure
	// count is fully determined.
	wantFallbacks := total / failEvery
	if got := execs.Load(); got != total {
		t.Errorf("server executions = %d, want %d", got, total)
	}

	// Decision mix: only full offloads and fallbacks, summing to the
	// total, with the fallback count matching both the injected failures
	// and the offloaders' own Stats.
	sum := audit.Summary()
	mix := map[obs.DecisionPath]int64{}
	for _, pc := range sum.Mix {
		mix[pc.Path] = pc.Count
	}
	if len(mix) != 2 || mix[obs.PathFull] == 0 || mix[obs.PathFallback] == 0 {
		t.Fatalf("decision mix = %v, want only %s and %s", sum.Mix, obs.PathFull, obs.PathFallback)
	}
	if mix[obs.PathFull]+mix[obs.PathFallback] != total {
		t.Errorf("mix sums to %d, want %d", mix[obs.PathFull]+mix[obs.PathFallback], total)
	}
	if mix[obs.PathFallback] != wantFallbacks {
		t.Errorf("fallback decisions = %d, want %d", mix[obs.PathFallback], wantFallbacks)
	}
	var statFallbacks int64
	for _, off := range offs {
		statFallbacks += int64(off.Stats().LocalFallbacks)
	}
	if statFallbacks != mix[obs.PathFallback] {
		t.Errorf("Stats fallbacks = %d, audit fallbacks = %d", statFallbacks, mix[obs.PathFallback])
	}

	// Prediction-error samples come from successful offloads only (the
	// only decisions carrying both a prediction and a measurement).
	if sum.PredErr.Count != int(mix[obs.PathFull]) {
		t.Errorf("prediction-error samples = %d, want %d", sum.PredErr.Count, mix[obs.PathFull])
	}

	// Per-decision attribution: fallbacks blame the server error; both
	// paths carry a stamped, unique trace ID and the server's address.
	seen := map[string]bool{}
	lastFullTrace := map[string]string{} // appID -> trace ID of latest full decision
	fullByApp := map[string]int64{}
	for _, d := range audit.Recent() {
		if d.Server != addr {
			t.Errorf("decision server = %q, want %q", d.Server, addr)
		}
		if !isHex16(d.TraceID) {
			t.Errorf("decision %s/%s trace ID %q, want 16 hex digits", d.Path, d.AppID, d.TraceID)
		}
		if seen[d.TraceID] {
			t.Errorf("trace ID %s appears on two decisions", d.TraceID)
		}
		seen[d.TraceID] = true
		switch d.Path {
		case obs.PathFallback:
			if d.Reason != "server-error" {
				t.Errorf("fallback reason = %q, want server-error", d.Reason)
			}
			if d.Measured <= 0 {
				t.Error("fallback decision missing local execution time")
			}
		case obs.PathFull:
			if d.Measured <= 0 || d.Predicted != 2*time.Millisecond {
				t.Errorf("full decision timing = %v/%v", d.Predicted, d.Measured)
			}
			lastFullTrace[d.AppID] = d.TraceID
			fullByApp[d.AppID]++
		default:
			t.Errorf("unexpected decision path %s", d.Path)
		}
	}

	// Joinability: each offloader's last successful decision names the
	// same trace the span recorder saw last, and the recorder aggregated
	// exactly the successful offloads.
	for i, off := range offs {
		appID := fmt.Sprintf("flaky-%d", i)
		st := off.Stats()
		if st.LastTrace == nil {
			t.Fatalf("client %d: no trace recorded", i)
		}
		if st.LastTrace.ID != lastFullTrace[appID] {
			t.Errorf("client %d: last trace %s, last full decision %s", i, st.LastTrace.ID, lastFullTrace[appID])
		}
		if got := off.TraceRecorder().Stage(trace.StageExecute).Count(); got != uint64(fullByApp[appID]) {
			t.Errorf("client %d: recorder execute count = %d, audit full count = %d", i, got, fullByApp[appID])
		}
	}
}

package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"websnap/internal/edge"
	"websnap/internal/mlapp"
	"websnap/internal/protocol"
	"websnap/internal/snapshot"
	"websnap/internal/testutil"
	"websnap/internal/webapp"
)

// TestNegotiateMuxEnablesConcurrency pins the negotiated handshake: the
// pong advertises mux support, the Conn flips to multiplexed operation,
// and many goroutines can then share it for interleaved round trips on
// the single underlying connection.
func TestNegotiateMuxEnablesConcurrency(t *testing.T) {
	testutil.LeakCheck(t)
	addr := startEdge(t, edge.Config{Installed: true, Workers: 2, QueueDepth: 64})
	conn := dialEdge(t, addr)

	ok, err := conn.NegotiateMux(32)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || !conn.Muxed() {
		t.Fatal("server supports HintMuxV1; negotiation should enable mux")
	}

	model := tinyModel(t)
	if err := conn.PreSendModel("mux-app", "tiny", model, false); err != nil {
		t.Fatal(err)
	}
	app, err := mlapp.NewFullApp("mux-app", "tiny", model, []string{"x", "y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, 1)); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
	snap, err := snapshot.Capture(app, snapshot.Options{})
	if err != nil {
		t.Fatal(err)
	}
	encoded, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}

	const streams = 24
	errs := make(chan error, streams)
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%3 == 0 {
				if _, _, err := conn.Ping(); err != nil {
					errs <- fmt.Errorf("stream %d ping: %w", i, err)
				}
				return
			}
			result, _, err := conn.OffloadSnapshot("mux-app", encoded, i%2 == 0)
			if err != nil {
				errs <- fmt.Errorf("stream %d offload: %w", i, err)
				return
			}
			if len(result) == 0 {
				errs <- fmt.Errorf("stream %d: empty result", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestNegotiateMuxOldServer pins the downgrade path: a server that answers
// the probe without the mux capability leaves the Conn serial and fully
// usable.
func TestNegotiateMuxOldServer(t *testing.T) {
	testutil.LeakCheck(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		for {
			if _, err := protocol.Read(c); err != nil {
				return
			}
			// An old server: pong without the mux capability (and no seq).
			msg, _ := protocol.Encode(protocol.MsgPong, protocol.PongHeader{Installed: true}, nil)
			if protocol.Write(c, msg) != nil {
				return
			}
		}
	}()

	conn, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ok, err := conn.NegotiateMux(8)
	if err != nil {
		t.Fatal(err)
	}
	if ok || conn.Muxed() {
		t.Fatal("negotiation against a mux-less server must leave the Conn serial")
	}
	if installed, _, err := conn.Ping(); err != nil || !installed {
		t.Fatalf("serial Conn unusable after failed negotiation: installed=%v err=%v", installed, err)
	}
}

// TestMuxTimeoutBreaksConn pins the timeout contract on a multiplexed
// stream: a response that never arrives fails the request with
// ErrConnBroken and poisons the Conn — the frame stream can no longer be
// trusted by any sibling stream.
func TestMuxTimeoutBreaksConn(t *testing.T) {
	testutil.LeakCheck(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	requests := make(chan struct{}, 8)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		n := 0
		for {
			msg, err := protocol.Read(c)
			if err != nil {
				return
			}
			n++
			if n == 1 {
				// Answer the negotiation probe like a mux-capable server.
				var ping protocol.PingHeader
				_ = protocol.DecodeHeader(msg, &ping)
				pong, _ := protocol.Encode(protocol.MsgPong,
					protocol.PongHeader{Installed: true, Mux: true, Seq: ping.Seq}, nil)
				if protocol.Write(c, pong) != nil {
					return
				}
				continue
			}
			// Swallow everything after the handshake.
			requests <- struct{}{}
		}
	}()

	conn, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetRequestTimeout(100 * time.Millisecond)
	ok, err := conn.NegotiateMux(8)
	if err != nil || !ok {
		t.Fatalf("negotiate: ok=%v err=%v", ok, err)
	}

	if _, _, err := conn.Ping(); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("timed-out mux request returned %v, want ErrConnBroken", err)
	}
	if !conn.Broken() {
		t.Fatal("Conn not marked broken after a mux request timeout")
	}
	if _, _, err := conn.Ping(); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("request on a broken mux Conn returned %v, want fail-fast ErrConnBroken", err)
	}
	select {
	case <-requests:
	case <-time.After(time.Second):
		t.Fatal("server never saw the swallowed request")
	}
}

// TestMuxRedialHealsSharedConn pins recovery on a multiplexed Conn: after a
// timeout breaks the shared connection, one Redial restores service for
// every stream, keeping mux mode, and redundant concurrent Redials are
// harmless.
func TestMuxRedialHealsSharedConn(t *testing.T) {
	testutil.LeakCheck(t)
	addr := startEdge(t, edge.Config{Installed: true, Workers: 2, QueueDepth: 16})
	conn := dialEdge(t, addr)
	if ok, err := conn.NegotiateMux(8); err != nil || !ok {
		t.Fatalf("negotiate: ok=%v err=%v", ok, err)
	}
	conn.markBroken()

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := conn.Redial(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if conn.Broken() {
		t.Fatal("Conn still broken after Redial")
	}
	if !conn.Muxed() {
		t.Fatal("Redial dropped mux mode")
	}
	if installed, _, err := conn.Ping(); err != nil || !installed {
		t.Fatalf("mux Conn unusable after Redial: installed=%v err=%v", installed, err)
	}
}

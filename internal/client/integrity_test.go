package client

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"

	"websnap/internal/edge"
	"websnap/internal/protocol"
)

// snapshotServer answers each snapshot request via respond, which receives
// the decoded request header and returns the response to write.
func snapshotServer(t *testing.T, respond func(req protocol.SnapshotHeader) protocol.Message) *Conn {
	t.Helper()
	clientSide, serverSide := net.Pipe()
	go func() {
		defer serverSide.Close()
		for {
			msg, err := protocol.Read(serverSide)
			if err != nil {
				return
			}
			var req protocol.SnapshotHeader
			if err := protocol.DecodeHeader(msg, &req); err != nil {
				return
			}
			if err := protocol.Write(serverSide, respond(req)); err != nil {
				return
			}
		}
	}()
	conn := NewConn(clientSide)
	t.Cleanup(func() { conn.Close() })
	return conn
}

// TestResponseSeqMismatchBreaksConn is a regression test: a response whose
// Seq belongs to a different request means the frame stream has slipped
// (e.g. a stale response surfacing after a fault), so the result must be
// rejected with ErrConnBroken and the connection marked broken.
func TestResponseSeqMismatchBreaksConn(t *testing.T) {
	conn := snapshotServer(t, func(req protocol.SnapshotHeader) protocol.Message {
		msg, _ := protocol.Encode(protocol.MsgResultSnapshot, protocol.SnapshotHeader{
			AppID: req.AppID, Seq: req.Seq + 1,
		}, []byte("// stale result"))
		return msg
	})
	_, _, err := conn.OffloadSnapshot("a", []byte("// snap"), false)
	if !errors.Is(err, ErrConnBroken) {
		t.Fatalf("err = %v, want ErrConnBroken", err)
	}
	if !conn.Broken() {
		t.Error("conn not marked broken after seq mismatch")
	}
}

// TestCorruptedResultBodyTypedError is a regression test: a result whose
// body does not match its header checksum must surface protocol.ErrChecksum
// instead of being applied, and — the frame being complete — must NOT break
// the connection.
func TestCorruptedResultBodyTypedError(t *testing.T) {
	conn := snapshotServer(t, func(req protocol.SnapshotHeader) protocol.Message {
		body := []byte("// result snapshot")
		sum := protocol.BodyChecksum(body)
		body[3] ^= 0x10 // corrupt after checksumming
		msg, _ := protocol.Encode(protocol.MsgResultSnapshot, protocol.SnapshotHeader{
			AppID: req.AppID, Seq: req.Seq, BodyCRC: sum,
		}, body)
		return msg
	})
	_, _, err := conn.OffloadSnapshot("a", []byte("// snap"), false)
	if !errors.Is(err, protocol.ErrChecksum) {
		t.Fatalf("err = %v, want protocol.ErrChecksum", err)
	}
	if conn.Broken() {
		t.Error("checksum mismatch must not break the connection: the stream is still aligned")
	}
}

// TestDialWrappedSurvivesRedial pins that the socket decoration passed to
// DialWrapped is re-applied on every Redial, so shaping or fault injection
// stays in force across reconnects.
func TestDialWrappedSurvivesRedial(t *testing.T) {
	addr := startEdge(t, edge.Config{Installed: true})
	var wraps atomic.Int32
	conn, err := DialWrapped(addr, func(c net.Conn) net.Conn {
		wraps.Add(1)
		return c
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if _, _, err := conn.Ping(); err != nil {
		t.Fatalf("ping on wrapped conn: %v", err)
	}
	if err := conn.Redial(); err != nil {
		t.Fatalf("redial: %v", err)
	}
	if _, _, err := conn.Ping(); err != nil {
		t.Fatalf("ping after redial: %v", err)
	}
	if got := wraps.Load(); got != 2 {
		t.Errorf("wrap applied %d times, want 2 (dial + redial)", got)
	}
}

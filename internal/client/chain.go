// Multi-hop chain execution: the client runs the front layer range
// locally (denaturing the input), then ships the boundary tensor to the
// first server of a hop manifest with ChainExec; each hop executes its
// range and relays onward, and the final output tensor returns relayed
// back through the chain, bit-identical to a local forward pass.
package client

import (
	"errors"
	"fmt"
	"time"

	"websnap/internal/protocol"
	"websnap/internal/tensor"
	"websnap/internal/trace"
)

// ChainHopError locates a multi-hop chain failure: Hop is the 1-based
// index into the hop manifest of the server that failed (a relay that
// could not reach its downstream reports the downstream's index). The
// re-planner uses it to exclude the dead hop and try a shorter chain.
type ChainHopError struct {
	Hop int
	Err error
}

func (e *ChainHopError) Error() string {
	return fmt.Sprintf("chain hop %d: %v", e.Hop, e.Err)
}

func (e *ChainHopError) Unwrap() error { return e.Err }

// ChainOutcome is one successful chain execution's result and telemetry.
type ChainOutcome struct {
	// Output is the chain's final output tensor.
	Output *tensor.Tensor
	// Span is the first hop's span subtree with every downstream hop
	// grafted under it (nil unless the request carried a trace ID against
	// a telemetry-capable server).
	Span *protocol.SpanNode
	// TraceID is the ID stamped on the chain request.
	TraceID string
	// RoundTrip spans request write start to response read completion —
	// the whole chain's remote latency as seen from the client.
	RoundTrip time.Duration
	// WireBytes is the boundary tensor's on-the-wire size.
	WireBytes int64
}

// ChainExec ships a boundary tensor down a chain of edge servers, each
// executing its manifest layer range on the pre-sent model, and returns
// the final output. traceID, when non-empty, is stamped on the request so
// every hop's span joins one parented tree; empty generates a fresh ID
// when telemetry is enabled and omits tracing otherwise.
//
// Failures at a specific hop surface as a *ChainHopError (also matching
// ErrServerError, and ErrOverloaded when a hop shed the request), so the
// caller can re-plan around the dead hop or fall back.
func (c *Conn) ChainExec(appID, modelName string, hops []protocol.ChainHop, boundary *tensor.Tensor, traceID string) (*ChainOutcome, error) {
	if len(hops) == 0 {
		return nil, errors.New("client: chain: empty hop manifest")
	}
	hints, seq := c.streamHints(protocol.HintChainV1)
	if hints < protocol.HintChainV1 {
		// A multiplexed stream's floor is HintMuxV1; chains need the full
		// ladder so hops answer with CRCs and graftable spans.
		hints = protocol.HintChainV1
	}
	if traceID == "" && c.TelemetryEnabled() {
		traceID = trace.NewID()
	}
	body := protocol.Float32Bytes(boundary.Data())
	req, err := protocol.Encode(protocol.MsgChainExec, protocol.ChainExecHeader{
		AppID:     appID,
		ModelName: modelName,
		Seq:       seq,
		Hints:     hints,
		Hop:       0,
		Hops:      hops,
		Shape:     boundary.Shape(),
		TraceID:   traceID,
		BodyCRC:   protocol.BodyChecksum(body),
	}, body)
	if err != nil {
		return nil, err
	}
	rtStart := time.Now()
	resp, err := c.roundTripSeq(req, seq)
	rt := time.Since(rtStart)
	if err != nil {
		return nil, fmt.Errorf("client: chain exec: %w", err)
	}
	if resp.Type != protocol.MsgChainResult {
		return nil, fmt.Errorf("client: chain exec: unexpected response %s", resp.Type)
	}
	var hdr protocol.ChainResultHeader
	if err := protocol.DecodeHeader(resp, &hdr); err != nil {
		return nil, err
	}
	if hdr.Seq != seq {
		// A response for a different request means the frame stream has
		// slipped; nothing further read from this socket can be trusted.
		c.markBroken()
		return nil, fmt.Errorf("%w: response seq %d for request %d", ErrConnBroken, hdr.Seq, seq)
	}
	if err := protocol.VerifyBody(resp.Body, hdr.BodyCRC); err != nil {
		// The frame was complete — the stream is still aligned — so the
		// connection stays usable; only this result is poisoned.
		return nil, fmt.Errorf("client: chain result: %w", err)
	}
	c.noteLoad(hdr.Load)
	vals, err := protocol.BytesFloat32(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: chain result: %w", err)
	}
	out, err := tensor.FromSlice(vals, hdr.Shape...)
	if err != nil {
		return nil, fmt.Errorf("client: chain result tensor: %w", err)
	}
	return &ChainOutcome{
		Output:    out,
		Span:      hdr.Span,
		TraceID:   traceID,
		RoundTrip: rt,
		WireBytes: int64(len(body)),
	}, nil
}

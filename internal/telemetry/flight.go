package telemetry

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"websnap/internal/obs"
	"websnap/internal/protocol"
	"websnap/internal/trace"
)

// DefaultFlightBytes is the flight recorder's byte cap when the caller
// passes zero.
const DefaultFlightBytes = 1 << 20

// Flight-entry reasons.
const (
	FlightSlow    = "slow"     // request exceeded the SLO objective
	FlightError   = "error"    // request failed
	FlightShed    = "shed"     // request shed to local execution
	FlightBurn    = "slo_burn" // SLO entered the burning state
	FlightHandoff = "handoff"  // roam handoff pre-send span tree
	FlightSwitch  = "switch"   // roamer changed edge servers
	FlightReplan  = "replan"   // chain hop failed; cut set re-planned
)

// FlightEntry is one captured incident: the trace identity, why it was
// captured, and whatever evidence was on hand — a cross-process span tree,
// the client-side stage trace, the joined audit decision.
type FlightEntry struct {
	TraceID string    `json:"traceId,omitempty"`
	Reason  string    `json:"reason"`
	At      time.Time `json:"at"`
	Note    string    `json:"note,omitempty"`
	// Span is the cross-process span tree (fleet hops).
	Span *protocol.SpanNode `json:"span,omitempty"`
	// Trace is the flat per-stage trace of the request.
	Trace *trace.Trace `json:"trace,omitempty"`
	// Decision is the joined offload audit decision, when one exists.
	Decision *obs.Decision `json:"decision,omitempty"`
}

// sizedEntry pairs an entry with its accounted JSON size.
type sizedEntry struct {
	entry FlightEntry
	bytes int64
}

// FlightRecorder is a byte-bounded ring of flight entries. Recording is
// O(evictions); the ring never holds more than its byte cap of encoded
// entries, so a long soak cannot grow the process by leaving it on.
type FlightRecorder struct {
	maxBytes int64
	now      func() time.Time

	mu      sync.Mutex
	entries []sizedEntry
	bytes   int64
	dropped uint64 // entries evicted or refused
	total   uint64 // entries ever recorded
}

// NewFlightRecorder creates a recorder bounded to maxBytes of encoded
// entries (DefaultFlightBytes when <= 0).
func NewFlightRecorder(maxBytes int64) *FlightRecorder {
	if maxBytes <= 0 {
		maxBytes = DefaultFlightBytes
	}
	return &FlightRecorder{maxBytes: maxBytes, now: time.Now}
}

// SetNow overrides the recorder's clock (tests, simulator).
func (f *FlightRecorder) SetNow(now func() time.Time) {
	if now != nil {
		f.now = now
	}
}

// Record captures one entry, evicting oldest entries until it fits. An
// entry larger than the whole cap is refused (counted as dropped) — the
// cap is a hard bound, not a target.
func (f *FlightRecorder) Record(e FlightEntry) {
	if f == nil {
		return
	}
	if e.At.IsZero() {
		e.At = f.now()
	}
	enc, err := json.Marshal(e)
	if err != nil {
		// Unencodable evidence (shouldn't happen with these types): keep
		// the incident identity at least.
		e.Trace, e.Span, e.Decision = nil, nil, nil
		enc, _ = json.Marshal(e)
	}
	size := int64(len(enc))
	f.mu.Lock()
	defer f.mu.Unlock()
	f.total++
	if size > f.maxBytes {
		f.dropped++
		return
	}
	for f.bytes+size > f.maxBytes && len(f.entries) > 0 {
		f.bytes -= f.entries[0].bytes
		f.entries = f.entries[1:]
		f.dropped++
	}
	f.entries = append(f.entries, sizedEntry{entry: e, bytes: size})
	f.bytes += size
}

// Dump returns the recorded entries, oldest first.
func (f *FlightRecorder) Dump() []FlightEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEntry, len(f.entries))
	for i, se := range f.entries {
		out[i] = se.entry
	}
	return out
}

// Bytes returns the accounted size of the resident entries.
func (f *FlightRecorder) Bytes() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bytes
}

// Cap returns the recorder's byte cap.
func (f *FlightRecorder) Cap() int64 {
	if f == nil {
		return 0
	}
	return f.maxBytes
}

// Len returns the resident entry count.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.entries)
}

// Dropped returns how many entries were evicted or refused.
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// flightDump is the /debug/flight payload.
type flightDump struct {
	CapBytes int64         `json:"capBytes"`
	Bytes    int64         `json:"bytes"`
	Total    uint64        `json:"total"`
	Dropped  uint64        `json:"dropped"`
	Entries  []FlightEntry `json:"entries"`
}

// Handler serves the ring's contents as JSON on /debug/flight.
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		f.mu.Lock()
		dump := flightDump{
			CapBytes: f.maxBytes, Bytes: f.bytes,
			Total: f.total, Dropped: f.dropped,
			Entries: make([]FlightEntry, len(f.entries)),
		}
		for i, se := range f.entries {
			dump.Entries[i] = se.entry
		}
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(dump)
	})
}

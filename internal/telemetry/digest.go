// Package telemetry is the fleet-wide observability plane built on top of
// internal/trace (span traces, mergeable histograms) and internal/obs
// (metrics registry, decision audit). It provides:
//
//   - stats digests: compact, lossless snapshots of a server's stage
//     histograms and decision counters, piggybacked on fleet heartbeats
//     (protocol.StatsDigest) and re-merged by fleetd into fleet-wide
//     exposition and per-server summaries (Rollup);
//   - an SLO engine: latency objectives with multi-window burn-rate
//     alerting over the same histogram bucket layout (SLO);
//   - a flight recorder: a byte-bounded ring of complete span trees and
//     joined audit decisions for slow, failed, and shed requests
//     (FlightRecorder), dumped via /debug/flight.
//
// Cross-process span propagation itself rides in the protocol package
// (SpanNode, HintTelemetryV1); this package consumes the resulting trees.
package telemetry

import (
	"time"

	"websnap/internal/protocol"
	"websnap/internal/trace"
)

// DigestSource bundles the live signals one process folds into a
// StatsDigest snapshot. Every field is optional; nil suppliers leave the
// corresponding digest field empty.
type DigestSource struct {
	// Recorder supplies the per-stage latency histograms.
	Recorder *trace.Recorder
	// Decisions supplies cumulative request-outcome counters by path.
	Decisions func() map[string]uint64
	// QueueDepth supplies the scheduler admission-queue depth.
	QueueDepth func() int
	// StoreBytes supplies the session store's resident byte size.
	StoreBytes func() int64
	// Start is when the process began serving (for UptimeMillis).
	Start time.Time
	// Now is the clock; nil selects time.Now.
	Now func() time.Time
}

// Digest snapshots the source into a wire digest. Stages with zero
// observations are omitted, so an idle server's digest stays tiny.
func (s DigestSource) Digest() *protocol.StatsDigest {
	now := time.Now
	if s.Now != nil {
		now = s.Now
	}
	d := &protocol.StatsDigest{}
	if s.Recorder != nil {
		for _, stage := range trace.AllStages() {
			h := s.Recorder.Stage(stage)
			if h == nil || h.Count() == 0 {
				continue
			}
			buckets, count, sum := h.ExportBuckets()
			if d.Stages == nil {
				d.Stages = make(map[string]protocol.HistDigest)
			}
			d.Stages[string(stage)] = protocol.HistDigest{Buckets: buckets, Count: count, SumNanos: sum}
		}
	}
	if s.Decisions != nil {
		if m := s.Decisions(); len(m) > 0 {
			d.Decisions = m
		}
	}
	if s.QueueDepth != nil {
		d.QueueDepth = s.QueueDepth()
	}
	if s.StoreBytes != nil {
		d.StoreBytes = s.StoreBytes()
	}
	if !s.Start.IsZero() {
		d.UptimeMillis = now().Sub(s.Start).Milliseconds()
	}
	return d
}

// HistogramFromDigest reconstructs a mergeable histogram from one wire
// digest entry.
func HistogramFromDigest(d protocol.HistDigest) *trace.Histogram {
	h := &trace.Histogram{}
	h.MergeBuckets(d.Buckets, d.Count, d.SumNanos)
	return h
}

// MergeStage folds one digest's named stage into dst (no-op when the
// stage is absent from the digest).
func MergeStage(dst *trace.Histogram, d *protocol.StatsDigest, stage trace.Stage) {
	if d == nil || dst == nil {
		return
	}
	if hd, ok := d.Stages[string(stage)]; ok {
		dst.MergeBuckets(hd.Buckets, hd.Count, hd.SumNanos)
	}
}

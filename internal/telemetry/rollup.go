package telemetry

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"

	"websnap/internal/obs"
	"websnap/internal/protocol"
	"websnap/internal/trace"
)

// ServerStats is one fleet member's last-heartbeated telemetry state as
// the registry stores it: identity, load, and (for telemetry-capable
// members) the cumulative stats digest.
type ServerStats struct {
	Addr     string             `json:"addr"`
	Capacity int                `json:"capacity"`
	Load     *protocol.LoadHint `json:"load,omitempty"`
	// AgeMillis is the heartbeat staleness at snapshot time (registry
	// clock).
	AgeMillis int64 `json:"ageMillis"`
	// Stats is the member's digest; nil for members that predate the
	// telemetry extension.
	Stats *protocol.StatsDigest `json:"stats,omitempty"`
}

// Rollup merges per-server digests into fleet-wide telemetry: a
// Prometheus/JSON exposition registry and per-server summaries. A Rollup
// is built fresh per scrape from the registry's current member snapshot —
// digests are cumulative, so no state carries between scrapes.
type Rollup struct {
	Servers []ServerStats
}

// rollupStages is the fixed label set the Prometheus rollup exposes; a
// bounded set keeps fleet-of-N cardinality at len(stages) series.
func rollupStages() []trace.Stage { return trace.AllStages() }

// MergedStage returns the fleet-wide histogram for one stage, merged
// across every member that reported it.
func (r Rollup) MergedStage(stage trace.Stage) *trace.Histogram {
	h := &trace.Histogram{}
	for _, s := range r.Servers {
		MergeStage(h, s.Stats, stage)
	}
	return h
}

// Registry builds a per-scrape metrics registry over the rollup:
// fleet-wide stage histograms (merged across members), a fleet-wide
// decision-mix counter vector, and per-server queue/store/staleness
// gauges. Family names are disjoint from both the fleetd registry's
// persistent fleet_* families and edged's websnap_* families, so the two
// expositions concatenate into one lint-clean payload.
func (r Rollup) Registry() *obs.Registry {
	reg := obs.NewRegistry()
	stageVec := reg.HistogramVec("websnap_rollup_stage_seconds",
		"Fleet-wide offload stage latency, merged from member heartbeat digests.", "stage")
	for _, stage := range rollupStages() {
		h := r.MergedStage(stage)
		if h.Count() == 0 {
			continue
		}
		stageVec.Attach(h, string(stage))
	}
	decisions := reg.CounterVec("websnap_rollup_decisions_total",
		"Fleet-wide executed request outcomes by path, merged from member digests.", "path")
	mix := make(map[string]uint64)
	for _, s := range r.Servers {
		if s.Stats == nil {
			continue
		}
		for path, n := range s.Stats.Decisions {
			mix[path] += n
		}
	}
	for _, path := range sortedKeys(mix) {
		decisions.With(path).Add(int64(mix[path]))
	}
	queue := reg.GaugeVec("websnap_rollup_queue_depth",
		"Per-member scheduler queue depth at last heartbeat.", "server")
	store := reg.GaugeVec("websnap_rollup_store_bytes",
		"Per-member session-store resident bytes at last heartbeat.", "server")
	stale := reg.GaugeVec("websnap_rollup_staleness_seconds",
		"Per-member heartbeat age at scrape time.", "server")
	for _, s := range r.Servers {
		stale.With(s.Addr).Set(float64(s.AgeMillis) / 1e3)
		if s.Stats == nil {
			continue
		}
		queue.With(s.Addr).Set(float64(s.Stats.QueueDepth))
		store.With(s.Addr).Set(float64(s.Stats.StoreBytes))
	}
	reg.GaugeFunc("websnap_rollup_servers",
		"Fleet members covered by this rollup.", func() float64 { return float64(len(r.Servers)) })
	return reg
}

// StageSummary is one stage's percentile summary in a server summary.
type StageSummary struct {
	Count      uint64  `json:"count"`
	MeanMillis float64 `json:"meanMillis"`
	P50Millis  float64 `json:"p50Millis"`
	P95Millis  float64 `json:"p95Millis"`
	P99Millis  float64 `json:"p99Millis"`
}

func summarize(h *trace.Histogram) StageSummary {
	q := h.Summary()
	return StageSummary{
		Count:      q.Count,
		MeanMillis: millis(q.Mean),
		P50Millis:  millis(q.P50),
		P95Millis:  millis(q.P95),
		P99Millis:  millis(q.P99),
	}
}

func millis(d time.Duration) float64 { return float64(d) / 1e6 }

// ServerSummary is one member's digest rendered for the /fleet endpoint.
type ServerSummary struct {
	Addr         string                  `json:"addr"`
	Capacity     int                     `json:"capacity"`
	AgeMillis    int64                   `json:"ageMillis"`
	QueueDepth   int                     `json:"queueDepth"`
	StoreBytes   int64                   `json:"storeBytes"`
	UptimeMillis int64                   `json:"uptimeMillis,omitempty"`
	Load         *protocol.LoadHint      `json:"load,omitempty"`
	Stages       map[string]StageSummary `json:"stages,omitempty"`
	Decisions    map[string]uint64       `json:"decisions,omitempty"`
	// Telemetry reports whether the member heartbeats digests; false for
	// members that predate the extension (their stage/decision fields are
	// empty, not zero).
	Telemetry bool `json:"telemetry"`
}

// FleetSummary is the /fleet endpoint payload: per-server summaries plus
// the fleet-wide merged view.
type FleetSummary struct {
	Servers []ServerSummary         `json:"servers"`
	Fleet   map[string]StageSummary `json:"fleet,omitempty"`
}

// Summarize renders the rollup for the /fleet endpoint.
func (r Rollup) Summarize() FleetSummary {
	out := FleetSummary{Servers: make([]ServerSummary, 0, len(r.Servers))}
	for _, s := range r.Servers {
		sum := ServerSummary{
			Addr: s.Addr, Capacity: s.Capacity, AgeMillis: s.AgeMillis,
			Load: s.Load, Telemetry: s.Stats != nil,
		}
		if s.Stats != nil {
			sum.QueueDepth = s.Stats.QueueDepth
			sum.StoreBytes = s.Stats.StoreBytes
			sum.UptimeMillis = s.Stats.UptimeMillis
			sum.Decisions = s.Stats.Decisions
			for name, hd := range s.Stats.Stages {
				if sum.Stages == nil {
					sum.Stages = make(map[string]StageSummary, len(s.Stats.Stages))
				}
				sum.Stages[name] = summarize(HistogramFromDigest(hd))
			}
		}
		out.Servers = append(out.Servers, sum)
	}
	sort.Slice(out.Servers, func(i, j int) bool { return out.Servers[i].Addr < out.Servers[j].Addr })
	for _, stage := range rollupStages() {
		h := r.MergedStage(stage)
		if h.Count() == 0 {
			continue
		}
		if out.Fleet == nil {
			out.Fleet = make(map[string]StageSummary)
		}
		out.Fleet[string(stage)] = summarize(h)
	}
	return out
}

// FleetHandler serves the /fleet summary as JSON, rebuilding the rollup
// per request from the snapshot supplier.
func FleetHandler(snapshot func() []ServerStats) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r := Rollup{Servers: snapshot()}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Summarize())
	})
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"websnap/internal/obs"
	"websnap/internal/protocol"
	"websnap/internal/trace"
)

func TestDigestRoundTripPreservesHistogram(t *testing.T) {
	rec := trace.NewRecorder()
	durations := []time.Duration{
		120 * time.Microsecond, 3 * time.Millisecond, 3 * time.Millisecond,
		47 * time.Millisecond, 900 * time.Millisecond,
	}
	for _, d := range durations {
		rec.Observe(trace.StageExecute, d)
	}
	src := DigestSource{
		Recorder:   rec,
		Decisions:  func() map[string]uint64 { return map[string]uint64{"snapshot_full": 5} },
		QueueDepth: func() int { return 3 },
		StoreBytes: func() int64 { return 1 << 20 },
	}
	d := src.Digest()
	if d.QueueDepth != 3 || d.StoreBytes != 1<<20 {
		t.Fatalf("scalars: %+v", d)
	}
	if d.Decisions["snapshot_full"] != 5 {
		t.Fatalf("decisions: %v", d.Decisions)
	}
	hd, ok := d.Stages[string(trace.StageExecute)]
	if !ok {
		t.Fatalf("execute stage missing from digest: %v", d.Stages)
	}
	// The digest must survive a wire round trip and rebuild a histogram
	// with identical count, sum, and quantiles.
	wire, err := json.Marshal(hd)
	if err != nil {
		t.Fatal(err)
	}
	var back protocol.HistDigest
	if err := json.Unmarshal(wire, &back); err != nil {
		t.Fatal(err)
	}
	h := HistogramFromDigest(back)
	orig := rec.Stage(trace.StageExecute)
	if h.Count() != orig.Count() || h.Sum() != orig.Sum() {
		t.Fatalf("rebuilt count/sum = %d/%v, want %d/%v", h.Count(), h.Sum(), orig.Count(), orig.Sum())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if h.Quantile(q) != orig.Quantile(q) {
			t.Errorf("q%v = %v, want %v", q, h.Quantile(q), orig.Quantile(q))
		}
	}
	// Stages with no observations must be absent, keeping idle digests
	// tiny.
	if _, ok := d.Stages[string(trace.StagePeerFetch)]; ok {
		t.Error("unobserved stage leaked into digest")
	}
}

func TestMergeStageAccumulatesAcrossServers(t *testing.T) {
	mk := func(ds ...time.Duration) *protocol.StatsDigest {
		rec := trace.NewRecorder()
		for _, d := range ds {
			rec.Observe(trace.StageExecute, d)
		}
		return DigestSource{Recorder: rec}.Digest()
	}
	a := mk(time.Millisecond, 2*time.Millisecond)
	b := mk(40 * time.Millisecond)
	merged := &trace.Histogram{}
	MergeStage(merged, a, trace.StageExecute)
	MergeStage(merged, b, trace.StageExecute)
	MergeStage(merged, nil, trace.StageExecute)                     // nil digest is a no-op
	MergeStage(merged, &protocol.StatsDigest{}, trace.StageExecute) // absent stage is a no-op
	if merged.Count() != 3 {
		t.Fatalf("merged count = %d, want 3", merged.Count())
	}
	if want := 43 * time.Millisecond; merged.Sum() != want {
		t.Fatalf("merged sum = %v, want %v", merged.Sum(), want)
	}
}

func TestSLOBurnRateWindows(t *testing.T) {
	var now time.Time = time.Unix(1000, 0)
	var burns []SLOStatus
	slo, err := NewSLO(SLOConfig{
		Name:        "test",
		Objective:   10 * time.Millisecond,
		Goal:        0.9, // 10% error budget
		ShortWindow: 10 * time.Second,
		LongWindow:  60 * time.Second,
		Now:         func() time.Time { return now },
		OnBurn:      func(st SLOStatus) { burns = append(burns, st) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Healthy traffic: all good events, no burn.
	for i := 0; i < 30; i++ {
		slo.Observe(time.Millisecond)
		now = now.Add(time.Second)
	}
	if st := slo.Status(); st.Burning || st.ShortBurn != 0 {
		t.Fatalf("healthy status = %+v", st)
	}
	// Regression: every request blows the objective. Burn rate heads to
	// 1/(1-goal) = 10x in both windows; the alert must fire exactly once
	// on the rising edge.
	for i := 0; i < 30; i++ {
		slo.Observe(50 * time.Millisecond)
		now = now.Add(time.Second)
	}
	st := slo.Status()
	if !st.Burning {
		t.Fatalf("status after regression = %+v, want burning", st)
	}
	if st.ShortBurn < DefaultSLOBurnThreshold || st.LongBurn < DefaultSLOBurnThreshold {
		t.Fatalf("burn rates %v/%v below threshold", st.ShortBurn, st.LongBurn)
	}
	if len(burns) != 1 {
		t.Fatalf("OnBurn fired %d times, want 1 (rising edge only)", len(burns))
	}
	// Recovery: the windows age the bad events out and the latch resets.
	for i := 0; i < 120; i++ {
		slo.Observe(time.Millisecond)
		now = now.Add(time.Second)
	}
	if st := slo.Status(); st.Burning {
		t.Fatalf("status after recovery = %+v, want not burning", st)
	}
	// A second regression fires the edge again.
	for i := 0; i < 30; i++ {
		slo.Observe(50 * time.Millisecond)
		now = now.Add(time.Second)
	}
	if len(burns) != 2 {
		t.Fatalf("OnBurn fired %d times after second regression, want 2", len(burns))
	}
}

func TestSLOObserveCountsClampsAndValidates(t *testing.T) {
	if _, err := NewSLO(SLOConfig{Objective: 0}); err == nil {
		t.Error("zero objective should fail")
	}
	if _, err := NewSLO(SLOConfig{Objective: time.Second, Goal: 1.5}); err == nil {
		t.Error("goal outside (0,1) should fail")
	}
	if _, err := NewSLO(SLOConfig{Objective: time.Second,
		ShortWindow: time.Hour, LongWindow: time.Minute}); err == nil {
		t.Error("long window shorter than short window should fail")
	}
	slo, err := NewSLO(SLOConfig{Objective: time.Second, ShortWindow: 5 * time.Second,
		LongWindow: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	slo.ObserveCounts(0, 5) // zero total: dropped entirely
	slo.ObserveCounts(2, 9) // bad clamped to total
	st := slo.Status()
	if st.ShortTotal != 2 || st.ShortBad != 2 {
		t.Fatalf("counts = %d/%d, want 2/2", st.ShortBad, st.ShortTotal)
	}
}

func TestSLOHandlerJSON(t *testing.T) {
	slo, err := NewSLO(SLOConfig{Name: "edge-serve", Objective: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	slo.Observe(time.Millisecond)
	rr := httptest.NewRecorder()
	slo.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/slo", nil))
	var st SLOStatus
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("invalid /slo payload: %v\n%s", err, rr.Body.Bytes())
	}
	if st.Name != "edge-serve" || st.ObjectiveMillis != 20 || st.Goal != 0.99 {
		t.Fatalf("payload = %+v", st)
	}
}

func TestFlightRecorderByteCap(t *testing.T) {
	f := NewFlightRecorder(2048)
	f.SetNow(func() time.Time { return time.Unix(42, 0) })
	note := strings.Repeat("x", 200)
	for i := 0; i < 100; i++ {
		f.Record(FlightEntry{TraceID: "0123456789abcdef", Reason: FlightSlow, Note: note})
		if f.Bytes() > f.Cap() {
			t.Fatalf("ring exceeded cap after %d records: %d > %d", i+1, f.Bytes(), f.Cap())
		}
	}
	if f.Len() == 0 || f.Dropped() == 0 {
		t.Fatalf("len=%d dropped=%d, want both positive", f.Len(), f.Dropped())
	}
	// Oversized entries are refused outright, not partially admitted.
	before := f.Len()
	f.Record(FlightEntry{Reason: FlightError, Note: strings.Repeat("y", 4096)})
	if f.Len() != before || f.Bytes() > f.Cap() {
		t.Fatalf("oversized entry changed the ring: len %d -> %d, bytes %d", before, f.Len(), f.Bytes())
	}
	// The nil recorder (no flight configured) absorbs everything.
	var nilRec *FlightRecorder
	nilRec.Record(FlightEntry{Reason: FlightSlow})
	if nilRec.Dump() != nil || nilRec.Len() != 0 {
		t.Error("nil recorder should be inert")
	}
}

func TestFlightRecorderDumpOrderAndHandler(t *testing.T) {
	f := NewFlightRecorder(1 << 16)
	for _, reason := range []string{FlightSlow, FlightShed, FlightBurn} {
		f.Record(FlightEntry{Reason: reason})
	}
	dump := f.Dump()
	if len(dump) != 3 || dump[0].Reason != FlightSlow || dump[2].Reason != FlightBurn {
		t.Fatalf("dump = %+v", dump)
	}
	rr := httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	var payload struct {
		CapBytes int64         `json:"capBytes"`
		Entries  []FlightEntry `json:"entries"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &payload); err != nil {
		t.Fatalf("invalid /debug/flight payload: %v", err)
	}
	if payload.CapBytes != 1<<16 || len(payload.Entries) != 3 {
		t.Fatalf("payload cap=%d entries=%d", payload.CapBytes, len(payload.Entries))
	}
}

// fleetStats builds a two-server fleet snapshot with digests.
func fleetStats() []ServerStats {
	mk := func(addr string, execute time.Duration, decisions map[string]uint64) ServerStats {
		rec := trace.NewRecorder()
		for i := 0; i < 5; i++ {
			rec.Observe(trace.StageExecute, execute)
		}
		rec.Observe(trace.StageQueue, execute/10)
		d := DigestSource{
			Recorder:   rec,
			Decisions:  func() map[string]uint64 { return decisions },
			QueueDepth: func() int { return 1 },
			StoreBytes: func() int64 { return 512 },
		}.Digest()
		return ServerStats{Addr: addr, Capacity: 4, AgeMillis: 250, Stats: d}
	}
	return []ServerStats{
		mk("edge-a:7080", 5*time.Millisecond, map[string]uint64{"snapshot_full": 3, "shed": 1}),
		mk("edge-b:7080", 90*time.Millisecond, map[string]uint64{"snapshot_full": 2}),
		{Addr: "edge-old:7080", Capacity: 2, AgeMillis: 100}, // pre-telemetry member
	}
}

func TestRollupPrometheusLintClean(t *testing.T) {
	reg := Rollup{Servers: fleetStats()}.Registry()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if problems := obs.LintPrometheus(buf.Bytes()); len(problems) != 0 {
		t.Fatalf("rollup exposition fails lint:\n%s\n---\n%s", strings.Join(problems, "\n"), buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"websnap_rollup_stage_seconds", "websnap_rollup_decisions_total",
		"websnap_rollup_queue_depth", "websnap_rollup_staleness_seconds",
		"websnap_rollup_servers 3",
		`path="snapshot_full"`, `server="edge-a:7080"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rollup exposition missing %q", want)
		}
	}
	// The rollup families must stay disjoint from the fleetd registry's
	// persistent families so concatenated expositions lint clean.
	fleetReg := obs.NewRegistry()
	obs.RegisterRuntimeStats(fleetReg)
	var both bytes.Buffer
	if err := fleetReg.WritePrometheus(&both); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&both); err != nil {
		t.Fatal(err)
	}
	if problems := obs.LintPrometheus(both.Bytes()); len(problems) != 0 {
		t.Fatalf("concatenated exposition fails lint:\n%s", strings.Join(problems, "\n"))
	}
}

func TestRollupSummarize(t *testing.T) {
	sum := Rollup{Servers: fleetStats()}.Summarize()
	if len(sum.Servers) != 3 {
		t.Fatalf("servers = %d, want 3", len(sum.Servers))
	}
	// Sorted by address; the pre-telemetry member reports Telemetry=false
	// with empty stage/decision fields.
	if sum.Servers[0].Addr != "edge-a:7080" || !sum.Servers[0].Telemetry {
		t.Fatalf("first server = %+v", sum.Servers[0])
	}
	old := sum.Servers[2]
	if old.Addr != "edge-old:7080" || old.Telemetry || old.Stages != nil {
		t.Fatalf("legacy server = %+v", old)
	}
	exec, ok := sum.Fleet[string(trace.StageExecute)]
	if !ok {
		t.Fatalf("fleet-wide execute summary missing: %v", sum.Fleet)
	}
	if exec.Count != 10 {
		t.Fatalf("fleet execute count = %d, want 10", exec.Count)
	}
	// The merged p99 must reflect the slow member, not the fast one.
	if exec.P99Millis < 50 {
		t.Fatalf("fleet execute p99 = %vms, want dominated by the 90ms member", exec.P99Millis)
	}
	a := sum.Servers[0]
	if a.QueueDepth != 1 || a.StoreBytes != 512 || a.Decisions["shed"] != 1 {
		t.Fatalf("server summary = %+v", a)
	}
}

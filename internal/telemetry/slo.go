package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// SLO defaults.
const (
	DefaultSLOShortWindow   = 5 * time.Minute
	DefaultSLOLongWindow    = time.Hour
	DefaultSLOBurnThreshold = 2.0
)

// SLOConfig parametrizes a latency SLO.
type SLOConfig struct {
	// Name labels the objective ("edge-serve", "fleet-serve").
	Name string
	// Objective is the latency threshold: a request slower than this is a
	// bad event.
	Objective time.Duration
	// Goal is the target good-event ratio (0.99 = 1% error budget). Zero
	// selects 0.99.
	Goal float64
	// ShortWindow and LongWindow are the two burn-rate windows; an alert
	// needs both to burn, so a brief spike (short only) and a slow bleed
	// that has already stopped (long only) both stay quiet. Zero selects
	// DefaultSLOShortWindow / DefaultSLOLongWindow.
	ShortWindow, LongWindow time.Duration
	// BurnThreshold is the burn-rate multiple that trips the alert (2.0 =
	// consuming error budget twice as fast as the objective allows). Zero
	// selects DefaultSLOBurnThreshold.
	BurnThreshold float64
	// Now is the clock; nil selects time.Now. Injectable for tests and
	// the simulator.
	Now func() time.Time
	// OnBurn, when set, fires once per transition into the burning state
	// (from the goroutine that observed the tripping event).
	OnBurn func(SLOStatus)
}

// sloSlot is one second of good/bad event counts.
type sloSlot struct {
	sec   int64
	total uint64
	bad   uint64
}

// SLO tracks a latency objective with multi-window burn-rate accounting
// over a ring of one-second slots. Observations can be individual
// latencies (Observe) or pre-aggregated counts from heartbeat digest
// deltas (ObserveCounts), so the same engine serves edged (per-request)
// and fleetd (per-heartbeat).
type SLO struct {
	cfg   SLOConfig
	mu    sync.Mutex
	slots []sloSlot
	// burning latches the alert state so OnBurn fires on the rising edge
	// only.
	burning bool
}

// NewSLO creates an SLO engine. Objective must be positive.
func NewSLO(cfg SLOConfig) (*SLO, error) {
	if cfg.Objective <= 0 {
		return nil, fmt.Errorf("telemetry: SLO objective must be positive, got %v", cfg.Objective)
	}
	if cfg.Goal <= 0 || cfg.Goal >= 1 {
		if cfg.Goal != 0 {
			return nil, fmt.Errorf("telemetry: SLO goal must be in (0,1), got %v", cfg.Goal)
		}
		cfg.Goal = 0.99
	}
	if cfg.ShortWindow <= 0 {
		cfg.ShortWindow = DefaultSLOShortWindow
	}
	if cfg.LongWindow <= 0 {
		cfg.LongWindow = DefaultSLOLongWindow
	}
	if cfg.LongWindow < cfg.ShortWindow {
		return nil, fmt.Errorf("telemetry: SLO long window %v shorter than short window %v",
			cfg.LongWindow, cfg.ShortWindow)
	}
	if cfg.BurnThreshold <= 0 {
		cfg.BurnThreshold = DefaultSLOBurnThreshold
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	slots := int(cfg.LongWindow/time.Second) + 1
	return &SLO{cfg: cfg, slots: make([]sloSlot, slots)}, nil
}

// Objective returns the configured latency threshold.
func (s *SLO) Objective() time.Duration { return s.cfg.Objective }

// Observe records one request latency against the objective.
func (s *SLO) Observe(d time.Duration) {
	bad := uint64(0)
	if d > s.cfg.Objective {
		bad = 1
	}
	s.ObserveCounts(1, bad)
}

// ObserveCounts records a pre-aggregated batch of events (bad <= total),
// e.g. the delta between two successive cumulative heartbeat digests.
func (s *SLO) ObserveCounts(total, bad uint64) {
	if total == 0 {
		return
	}
	if bad > total {
		bad = total
	}
	sec := s.cfg.Now().Unix()
	s.mu.Lock()
	slot := &s.slots[int(sec%int64(len(s.slots)))]
	if slot.sec != sec {
		*slot = sloSlot{sec: sec}
	}
	slot.total += total
	slot.bad += bad
	st := s.statusLocked()
	fire := st.Burning && !s.burning
	s.burning = st.Burning
	s.mu.Unlock()
	if fire && s.cfg.OnBurn != nil {
		s.cfg.OnBurn(st)
	}
}

// SLOStatus is the engine's current state, served on /slo.
type SLOStatus struct {
	Name            string  `json:"name,omitempty"`
	ObjectiveMillis float64 `json:"objectiveMillis"`
	Goal            float64 `json:"goal"`
	BurnThreshold   float64 `json:"burnThreshold"`
	// ShortBurn/LongBurn are the burn rates over the two windows: the
	// observed bad-event ratio divided by the error budget (1-Goal). 1.0
	// means consuming budget exactly as fast as the objective allows.
	ShortBurn float64 `json:"shortBurn"`
	LongBurn  float64 `json:"longBurn"`
	// ShortTotal/ShortBad and LongTotal/LongBad are the raw window counts.
	ShortTotal uint64 `json:"shortTotal"`
	ShortBad   uint64 `json:"shortBad"`
	LongTotal  uint64 `json:"longTotal"`
	LongBad    uint64 `json:"longBad"`
	// Burning reports whether both windows exceed the burn threshold.
	Burning bool `json:"burning"`
}

// Status returns the current multi-window burn state.
func (s *SLO) Status() SLOStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked()
}

func (s *SLO) statusLocked() SLOStatus {
	now := s.cfg.Now().Unix()
	st := SLOStatus{
		Name:            s.cfg.Name,
		ObjectiveMillis: float64(s.cfg.Objective) / 1e6,
		Goal:            s.cfg.Goal,
		BurnThreshold:   s.cfg.BurnThreshold,
	}
	shortCut := now - int64(s.cfg.ShortWindow/time.Second)
	longCut := now - int64(s.cfg.LongWindow/time.Second)
	for i := range s.slots {
		slot := &s.slots[i]
		if slot.sec == 0 || slot.sec <= longCut || slot.sec > now {
			continue
		}
		st.LongTotal += slot.total
		st.LongBad += slot.bad
		if slot.sec > shortCut {
			st.ShortTotal += slot.total
			st.ShortBad += slot.bad
		}
	}
	budget := 1 - s.cfg.Goal
	st.ShortBurn = burnRate(st.ShortBad, st.ShortTotal, budget)
	st.LongBurn = burnRate(st.LongBad, st.LongTotal, budget)
	st.Burning = st.ShortBurn >= s.cfg.BurnThreshold && st.LongBurn >= s.cfg.BurnThreshold
	return st
}

func burnRate(bad, total uint64, budget float64) float64 {
	if total == 0 || budget <= 0 {
		return 0
	}
	return float64(bad) / float64(total) / budget
}

// Handler serves the SLO status as JSON on /slo.
func (s *SLO) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Status())
	})
}

package mlapp

import (
	"math"
	"strings"
	"testing"

	"websnap/internal/models"
	"websnap/internal/nn"
	"websnap/internal/tensor"
	"websnap/internal/webapp"
)

func tinyModel(t *testing.T) *nn.Network {
	t.Helper()
	m, err := models.BuildTinyNet("tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

var labels = []string{"cat", "dog", "bird"}

func TestRegistriesAreStable(t *testing.T) {
	a := FullRegistry()
	b := FullRegistry()
	if a.CodeHash() != b.CodeHash() {
		t.Error("FullRegistry hash unstable")
	}
	p := PartialRegistry()
	if a.CodeHash() == p.CodeHash() {
		t.Error("full and partial bundles must differ")
	}
}

func TestFullAppInference(t *testing.T) {
	app, err := NewFullApp("a", "tiny", tinyModel(t), labels)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadImage(app, SyntheticImage(3*16*16, 1)); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventClick})
	if _, err := app.Run(5); err != nil {
		t.Fatal(err)
	}
	res := Result(app)
	found := false
	for _, l := range labels {
		if res == l {
			found = true
		}
	}
	if !found {
		t.Errorf("result %q not one of the labels", res)
	}
	if node := app.DOM().Find(ResultID); node.Text != res {
		t.Error("DOM and result global disagree")
	}
	scores, ok := app.Global(GlobalScores)
	if !ok {
		t.Fatal("scores global missing")
	}
	var sum float64
	for _, v := range scores.(webapp.Float32Array) {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Errorf("scores sum = %v, want 1 (softmax)", sum)
	}
}

func TestFullAppMatchesDirectForward(t *testing.T) {
	model := tinyModel(t)
	app, err := NewFullApp("a", "tiny", model, labels)
	if err != nil {
		t.Fatal(err)
	}
	img := SyntheticImage(3*16*16, 9)
	if err := LoadImage(app, img); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventClick})
	if _, err := app.Run(5); err != nil {
		t.Fatal(err)
	}
	in, err := tensor.FromSlice([]float32(img), model.InputShape()...)
	if err != nil {
		t.Fatal(err)
	}
	out, err := model.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := out.MaxIndex()
	if got := Result(app); got != labels[idx] {
		t.Errorf("app result %q != direct forward argmax %q", got, labels[idx])
	}
}

func TestPartialAppMatchesFullApp(t *testing.T) {
	model := tinyModel(t)
	img := SyntheticImage(3*16*16, 4)

	full, err := NewFullApp("f", "tiny", model, labels)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadImage(full, img); err != nil {
		t.Fatal(err)
	}
	full.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventClick})
	if _, err := full.Run(5); err != nil {
		t.Fatal(err)
	}

	for split := 1; split < model.NumLayers()-1; split++ {
		partial, err := NewPartialApp("p", "tiny", model, split, labels)
		if err != nil {
			t.Fatalf("split %d: %v", split, err)
		}
		if err := LoadImage(partial, img); err != nil {
			t.Fatal(err)
		}
		partial.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventClick})
		if _, err := partial.Run(5); err != nil {
			t.Fatalf("split %d: %v", split, err)
		}
		if got, want := Result(partial), Result(full); got != want {
			t.Errorf("split %d: partial result %q != full %q", split, got, want)
		}
	}
}

func TestPartialAppDropsImage(t *testing.T) {
	app, err := NewPartialApp("p", "tiny", tinyModel(t), 3, labels)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadImage(app, SyntheticImage(3*16*16, 2)); err != nil {
		t.Fatal(err)
	}
	// Run ONLY front(): the click handler.
	app.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventClick})
	if err := app.Step(); err != nil {
		t.Fatal(err)
	}
	if v, _ := app.Global(GlobalImage); v != nil {
		t.Error("front() must null the image before the offload point")
	}
	if _, ok := app.Global(GlobalFeature); !ok {
		t.Error("front() must publish the feature data")
	}
	ev, ok := app.PeekEvent()
	if !ok || ev.Type != EventFrontComplete {
		t.Errorf("pending event = %+v, want front_complete", ev)
	}
}

func TestPartialAppBadSplit(t *testing.T) {
	model := tinyModel(t)
	if _, err := NewPartialApp("p", "tiny", model, model.NumLayers(), labels); err == nil {
		t.Error("out-of-range split should fail")
	}
}

func TestHandlersErrorPaths(t *testing.T) {
	model := tinyModel(t)
	t.Run("inference without image", func(t *testing.T) {
		app, err := NewFullApp("a", "tiny", model, labels)
		if err != nil {
			t.Fatal(err)
		}
		app.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventClick})
		if err := app.Step(); err == nil || !strings.Contains(err.Error(), "missing") {
			t.Errorf("err = %v, want missing-global error", err)
		}
	})
	t.Run("load with bad payload", func(t *testing.T) {
		app, err := NewFullApp("a", "tiny", model, labels)
		if err != nil {
			t.Fatal(err)
		}
		app.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventLoad, Payload: "not pixels"})
		if err := app.Step(); err == nil {
			t.Error("non-array payload should fail")
		}
	})
	t.Run("wrong image size", func(t *testing.T) {
		app, err := NewFullApp("a", "tiny", model, labels)
		if err != nil {
			t.Fatal(err)
		}
		if err := LoadImage(app, SyntheticImage(7, 1)); err != nil {
			t.Fatal(err)
		}
		app.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventClick})
		if err := app.Step(); err == nil {
			t.Error("mis-sized image should fail at inference")
		}
	})
	t.Run("model not loaded", func(t *testing.T) {
		app, err := webapp.NewApp("bare", FullRegistry())
		if err != nil {
			t.Fatal(err)
		}
		if err := app.SetGlobal(GlobalModelName, "ghost"); err != nil {
			t.Fatal(err)
		}
		if err := app.AddEventListener(ButtonID, EventClick, "inference"); err != nil {
			t.Fatal(err)
		}
		if err := app.SetGlobal(GlobalImage, SyntheticImage(4, 1)); err != nil {
			t.Fatal(err)
		}
		app.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventClick})
		if err := app.Step(); err == nil || !strings.Contains(err.Error(), "not loaded") {
			t.Errorf("err = %v, want not-loaded error", err)
		}
	})
}

func TestSyntheticImageDeterministic(t *testing.T) {
	a := SyntheticImage(100, 5)
	b := SyntheticImage(100, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
		if a[i] < 0 || a[i] > 1 {
			t.Fatalf("pixel %d out of [0,1]: %v", i, a[i])
		}
	}
	c := SyntheticImage(100, 6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestResultWithoutInference(t *testing.T) {
	app, err := NewFullApp("a", "tiny", tinyModel(t), labels)
	if err != nil {
		t.Fatal(err)
	}
	if got := Result(app); got != "" {
		t.Errorf("Result before inference = %q, want empty", got)
	}
}

func TestPublishResultWithoutLabels(t *testing.T) {
	// Fewer labels than classes: fall back to "class N".
	app, err := NewFullApp("a", "tiny", tinyModel(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadImage(app, SyntheticImage(3*16*16, 3)); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventClick})
	if _, err := app.Run(5); err != nil {
		t.Fatal(err)
	}
	if got := Result(app); !strings.HasPrefix(got, "class ") {
		t.Errorf("result = %q, want class-index fallback", got)
	}
}

func TestBatchHandlersMatchPerAppHandlers(t *testing.T) {
	// Build pairs of identical apps; run one through the per-app handler
	// and the other through the batched handler, and require bit-identical
	// published scores — the contract the edge scheduler's micro-batching
	// relies on.
	const n = 4
	model := tinyModel(t)
	var solo, batched []*webapp.App
	for i := 0; i < n; i++ {
		img := SyntheticImage(3*16*16, uint64(i+1))
		for _, group := range []*[]*webapp.App{&solo, &batched} {
			app, err := NewFullApp("a", "tiny", model, labels)
			if err != nil {
				t.Fatal(err)
			}
			if err := LoadImage(app, img); err != nil {
				t.Fatal(err)
			}
			*group = append(*group, app)
		}
	}
	ev := webapp.Event{Target: ButtonID, Type: EventClick}
	for _, app := range solo {
		if err := handleInference(app, ev); err != nil {
			t.Fatal(err)
		}
	}
	fn, ok := FullRegistry().BatchHandler("inference")
	if !ok {
		t.Fatal("full registry has no batched inference handler")
	}
	evs := make([]webapp.Event, n)
	for i := range evs {
		evs[i] = ev
	}
	if err := fn(batched, evs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got, want := Result(batched[i]), Result(solo[i]); got != want {
			t.Errorf("app %d: batched result %q, solo %q", i, got, want)
		}
		sg, _ := batched[i].Global(GlobalScores)
		sw, _ := solo[i].Global(GlobalScores)
		got, want := sg.(webapp.Float32Array), sw.(webapp.Float32Array)
		if len(got) != len(want) {
			t.Fatalf("app %d: score lengths %d vs %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("app %d score %d: batched %v != solo %v", i, j, got[j], want[j])
			}
		}
	}
}

func TestRearBatchHandlerMatchesSolo(t *testing.T) {
	model := tinyModel(t)
	mk := func(seed uint64) *webapp.App {
		app, err := NewPartialApp("a", "tiny", model, 2, labels)
		if err != nil {
			t.Fatal(err)
		}
		if err := LoadImage(app, SyntheticImage(3*16*16, seed)); err != nil {
			t.Fatal(err)
		}
		// Run front() so the feature global is populated.
		app.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventClick})
		if err := app.Step(); err != nil {
			t.Fatal(err)
		}
		return app
	}
	a, b := mk(7), mk(7)
	ev := webapp.Event{Target: ButtonID, Type: EventFrontComplete}
	if err := handleRear(a, ev); err != nil {
		t.Fatal(err)
	}
	fn, ok := PartialRegistry().BatchHandler("rear")
	if !ok {
		t.Fatal("partial registry has no batched rear handler")
	}
	if err := fn([]*webapp.App{b}, []webapp.Event{ev}); err != nil {
		t.Fatal(err)
	}
	if Result(a) != Result(b) {
		t.Errorf("batched rear result %q != solo %q", Result(b), Result(a))
	}
}

func TestBatchRegistrationHashNeutral(t *testing.T) {
	// Batched handlers are an execution strategy, not app code: a registry
	// with them must hash identically to one without.
	plain := webapp.NewRegistry("mlapp-full")
	plain.MustRegister("load_image", handleLoadImage)
	plain.MustRegister("inference", handleInference)
	if plain.CodeHash() != FullRegistry().CodeHash() {
		t.Error("batch handler registration changed the code hash")
	}
}

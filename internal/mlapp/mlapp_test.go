package mlapp

import (
	"math"
	"strings"
	"testing"

	"websnap/internal/models"
	"websnap/internal/nn"
	"websnap/internal/tensor"
	"websnap/internal/webapp"
)

func tinyModel(t *testing.T) *nn.Network {
	t.Helper()
	m, err := models.BuildTinyNet("tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

var labels = []string{"cat", "dog", "bird"}

func TestRegistriesAreStable(t *testing.T) {
	a := FullRegistry()
	b := FullRegistry()
	if a.CodeHash() != b.CodeHash() {
		t.Error("FullRegistry hash unstable")
	}
	p := PartialRegistry()
	if a.CodeHash() == p.CodeHash() {
		t.Error("full and partial bundles must differ")
	}
}

func TestFullAppInference(t *testing.T) {
	app, err := NewFullApp("a", "tiny", tinyModel(t), labels)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadImage(app, SyntheticImage(3*16*16, 1)); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventClick})
	if _, err := app.Run(5); err != nil {
		t.Fatal(err)
	}
	res := Result(app)
	found := false
	for _, l := range labels {
		if res == l {
			found = true
		}
	}
	if !found {
		t.Errorf("result %q not one of the labels", res)
	}
	if node := app.DOM().Find(ResultID); node.Text != res {
		t.Error("DOM and result global disagree")
	}
	scores, ok := app.Global(GlobalScores)
	if !ok {
		t.Fatal("scores global missing")
	}
	var sum float64
	for _, v := range scores.(webapp.Float32Array) {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Errorf("scores sum = %v, want 1 (softmax)", sum)
	}
}

func TestFullAppMatchesDirectForward(t *testing.T) {
	model := tinyModel(t)
	app, err := NewFullApp("a", "tiny", model, labels)
	if err != nil {
		t.Fatal(err)
	}
	img := SyntheticImage(3*16*16, 9)
	if err := LoadImage(app, img); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventClick})
	if _, err := app.Run(5); err != nil {
		t.Fatal(err)
	}
	in, err := tensor.FromSlice([]float32(img), model.InputShape()...)
	if err != nil {
		t.Fatal(err)
	}
	out, err := model.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := out.MaxIndex()
	if got := Result(app); got != labels[idx] {
		t.Errorf("app result %q != direct forward argmax %q", got, labels[idx])
	}
}

func TestPartialAppMatchesFullApp(t *testing.T) {
	model := tinyModel(t)
	img := SyntheticImage(3*16*16, 4)

	full, err := NewFullApp("f", "tiny", model, labels)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadImage(full, img); err != nil {
		t.Fatal(err)
	}
	full.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventClick})
	if _, err := full.Run(5); err != nil {
		t.Fatal(err)
	}

	for split := 1; split < model.NumLayers()-1; split++ {
		partial, err := NewPartialApp("p", "tiny", model, split, labels)
		if err != nil {
			t.Fatalf("split %d: %v", split, err)
		}
		if err := LoadImage(partial, img); err != nil {
			t.Fatal(err)
		}
		partial.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventClick})
		if _, err := partial.Run(5); err != nil {
			t.Fatalf("split %d: %v", split, err)
		}
		if got, want := Result(partial), Result(full); got != want {
			t.Errorf("split %d: partial result %q != full %q", split, got, want)
		}
	}
}

func TestPartialAppDropsImage(t *testing.T) {
	app, err := NewPartialApp("p", "tiny", tinyModel(t), 3, labels)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadImage(app, SyntheticImage(3*16*16, 2)); err != nil {
		t.Fatal(err)
	}
	// Run ONLY front(): the click handler.
	app.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventClick})
	if err := app.Step(); err != nil {
		t.Fatal(err)
	}
	if v, _ := app.Global(GlobalImage); v != nil {
		t.Error("front() must null the image before the offload point")
	}
	if _, ok := app.Global(GlobalFeature); !ok {
		t.Error("front() must publish the feature data")
	}
	ev, ok := app.PeekEvent()
	if !ok || ev.Type != EventFrontComplete {
		t.Errorf("pending event = %+v, want front_complete", ev)
	}
}

func TestPartialAppBadSplit(t *testing.T) {
	model := tinyModel(t)
	if _, err := NewPartialApp("p", "tiny", model, model.NumLayers(), labels); err == nil {
		t.Error("out-of-range split should fail")
	}
}

func TestHandlersErrorPaths(t *testing.T) {
	model := tinyModel(t)
	t.Run("inference without image", func(t *testing.T) {
		app, err := NewFullApp("a", "tiny", model, labels)
		if err != nil {
			t.Fatal(err)
		}
		app.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventClick})
		if err := app.Step(); err == nil || !strings.Contains(err.Error(), "missing") {
			t.Errorf("err = %v, want missing-global error", err)
		}
	})
	t.Run("load with bad payload", func(t *testing.T) {
		app, err := NewFullApp("a", "tiny", model, labels)
		if err != nil {
			t.Fatal(err)
		}
		app.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventLoad, Payload: "not pixels"})
		if err := app.Step(); err == nil {
			t.Error("non-array payload should fail")
		}
	})
	t.Run("wrong image size", func(t *testing.T) {
		app, err := NewFullApp("a", "tiny", model, labels)
		if err != nil {
			t.Fatal(err)
		}
		if err := LoadImage(app, SyntheticImage(7, 1)); err != nil {
			t.Fatal(err)
		}
		app.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventClick})
		if err := app.Step(); err == nil {
			t.Error("mis-sized image should fail at inference")
		}
	})
	t.Run("model not loaded", func(t *testing.T) {
		app, err := webapp.NewApp("bare", FullRegistry())
		if err != nil {
			t.Fatal(err)
		}
		if err := app.SetGlobal(GlobalModelName, "ghost"); err != nil {
			t.Fatal(err)
		}
		if err := app.AddEventListener(ButtonID, EventClick, "inference"); err != nil {
			t.Fatal(err)
		}
		if err := app.SetGlobal(GlobalImage, SyntheticImage(4, 1)); err != nil {
			t.Fatal(err)
		}
		app.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventClick})
		if err := app.Step(); err == nil || !strings.Contains(err.Error(), "not loaded") {
			t.Errorf("err = %v, want not-loaded error", err)
		}
	})
}

func TestSyntheticImageDeterministic(t *testing.T) {
	a := SyntheticImage(100, 5)
	b := SyntheticImage(100, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
		if a[i] < 0 || a[i] > 1 {
			t.Fatalf("pixel %d out of [0,1]: %v", i, a[i])
		}
	}
	c := SyntheticImage(100, 6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestResultWithoutInference(t *testing.T) {
	app, err := NewFullApp("a", "tiny", tinyModel(t), labels)
	if err != nil {
		t.Fatal(err)
	}
	if got := Result(app); got != "" {
		t.Errorf("Result before inference = %q, want empty", got)
	}
}

func TestPublishResultWithoutLabels(t *testing.T) {
	// Fewer labels than classes: fall back to "class N".
	app, err := NewFullApp("a", "tiny", tinyModel(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadImage(app, SyntheticImage(3*16*16, 3)); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventClick})
	if _, err := app.Run(5); err != nil {
		t.Fatal(err)
	}
	if got := Result(app); !strings.HasPrefix(got, "class ") {
		t.Errorf("result = %q, want class-index fallback", got)
	}
}

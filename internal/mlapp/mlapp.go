// Package mlapp builds the DNN-based image-recognition web apps the paper
// evaluates: the Fig 2 full-inference app (load an image, click, run the
// whole DNN) and the Fig 5 partial-inference app (front() runs the first
// layers locally, dispatches "front_complete", and rear() — the offloaded
// part — finishes the DNN).
//
// Handlers read everything from app state (globals and loaded models), so
// the same two code bundles serve every model; client and edge server
// resolve them from the shared catalog by code hash.
package mlapp

import (
	"errors"
	"fmt"

	"websnap/internal/nn"
	"websnap/internal/tensor"
	"websnap/internal/webapp"
)

// Element IDs and event types used by the apps.
const (
	// ButtonID is the id of the app's single button.
	ButtonID = "btn"
	// ResultID is the id of the result paragraph in the DOM.
	ResultID = "result"
	// EventLoad loads an image into the app.
	EventLoad = "load"
	// EventClick starts inference.
	EventClick = "click"
	// EventFrontComplete is the custom event Fig 5's front() dispatches
	// after partial inference; offloading is triggered on it.
	EventFrontComplete = "front_complete"
)

// Well-known global variable names.
const (
	GlobalModelName = "modelName"
	GlobalLabels    = "labels"
	GlobalImage     = "image"
	GlobalFeature   = "feature"
	GlobalScores    = "scores"
	GlobalResult    = "resultText"
	// GlobalQuality holds the app's model quality tier; see
	// webapp.GlobalQuality for the snapshot semantics.
	GlobalQuality = webapp.GlobalQuality
)

// FrontSuffix and RearSuffix name the split model halves loaded into a
// partial-inference app.
const (
	FrontSuffix = "_front"
	RearSuffix  = "_rear"
)

// FullRegistry returns the Fig 2 code bundle: load_image and inference.
func FullRegistry() *webapp.Registry {
	reg := webapp.NewRegistry("mlapp-full")
	reg.MustRegister("load_image", handleLoadImage)
	reg.MustRegister("inference", handleInference)
	reg.MustRegisterBatch("inference", handleInferenceBatch)
	return reg
}

// PartialRegistry returns the Fig 5 code bundle: load_image, front, rear.
func PartialRegistry() *webapp.Registry {
	reg := webapp.NewRegistry("mlapp-partial")
	reg.MustRegister("load_image", handleLoadImage)
	reg.MustRegister("front", handleFront)
	reg.MustRegister("rear", handleRear)
	reg.MustRegisterBatch("rear", handleRearBatch)
	return reg
}

// NewFullApp builds a running Fig 2 app instance for the given model.
func NewFullApp(appID, modelName string, model *nn.Network, labels []string) (*webapp.App, error) {
	app, err := newBaseApp(appID, FullRegistry(), modelName, labels)
	if err != nil {
		return nil, err
	}
	app.LoadModel(modelName, model)
	if err := app.AddEventListener(ButtonID, EventClick, "inference"); err != nil {
		return nil, err
	}
	return app, nil
}

// NewPartialApp builds a running Fig 5 app instance with the model split
// after layer splitIndex: layers [0, splitIndex] execute in front() on the
// client, the rest in rear() at the server.
func NewPartialApp(appID, modelName string, model *nn.Network, splitIndex int, labels []string) (*webapp.App, error) {
	front, rear, err := model.Split(splitIndex)
	if err != nil {
		return nil, fmt.Errorf("mlapp: %w", err)
	}
	app, err := newBaseApp(appID, PartialRegistry(), modelName, labels)
	if err != nil {
		return nil, err
	}
	app.LoadModel(modelName+FrontSuffix, front)
	app.LoadModel(modelName+RearSuffix, rear)
	if err := app.AddEventListener(ButtonID, EventClick, "front"); err != nil {
		return nil, err
	}
	if err := app.AddEventListener(ButtonID, EventFrontComplete, "rear"); err != nil {
		return nil, err
	}
	return app, nil
}

func newBaseApp(appID string, reg *webapp.Registry, modelName string, labels []string) (*webapp.App, error) {
	app, err := webapp.NewApp(appID, reg)
	if err != nil {
		return nil, err
	}
	app.DOM().AppendChild(webapp.NewNode("button", ButtonID)).Text = "inference"
	app.DOM().AppendChild(webapp.NewNode("p", ResultID)).Text = "?"
	if err := app.SetGlobal(GlobalModelName, modelName); err != nil {
		return nil, err
	}
	lv := make([]webapp.Value, len(labels))
	for i, l := range labels {
		lv[i] = l
	}
	if err := app.SetGlobal(GlobalLabels, lv); err != nil {
		return nil, err
	}
	if err := app.AddEventListener(ButtonID, EventLoad, "load_image"); err != nil {
		return nil, err
	}
	return app, nil
}

// SyntheticImage generates a deterministic pseudo-random image of the given
// volume, standing in for the user-supplied photo.
func SyntheticImage(volume int, seed uint64) webapp.Float32Array {
	img := make(webapp.Float32Array, volume)
	s := seed*2654435761 + 12345
	for i := range img {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		img[i] = float32(s%256) / 255
	}
	return img
}

// handleLoadImage stores the event payload (a Float32Array of pixels) into
// the image global, like Fig 2's image-loading event handler.
func handleLoadImage(app *webapp.App, ev webapp.Event) error {
	img, ok := ev.Payload.(webapp.Float32Array)
	if !ok {
		return fmt.Errorf("mlapp: load event payload is %T, want Float32Array", ev.Payload)
	}
	return app.SetGlobal(GlobalImage, img)
}

// handleInference is Fig 2's inference handler: run the whole DNN on the
// loaded image and add the result to the DOM.
func handleInference(app *webapp.App, ev webapp.Event) error {
	model, err := appModel(app, "")
	if err != nil {
		return err
	}
	in, err := globalTensor(app, GlobalImage, model.InputShape())
	if err != nil {
		return err
	}
	out, err := model.ForwardPrec(in, Quality(app))
	if err != nil {
		return fmt.Errorf("mlapp: inference: %w", err)
	}
	return publishResult(app, out)
}

// handleFront is Fig 5's front(): run the front part of the DNN locally,
// store the (denatured) feature data, drop the raw image so it never leaves
// the device, and dispatch front_complete.
func handleFront(app *webapp.App, ev webapp.Event) error {
	front, err := appModel(app, FrontSuffix)
	if err != nil {
		return err
	}
	in, err := globalTensor(app, GlobalImage, front.InputShape())
	if err != nil {
		return err
	}
	feat, err := front.ForwardPrec(in, Quality(app))
	if err != nil {
		return fmt.Errorf("mlapp: inference_front: %w", err)
	}
	if err := app.SetGlobal(GlobalFeature, webapp.Float32Array(feat.Data())); err != nil {
		return err
	}
	// Privacy: the original input must not appear in the offloaded
	// snapshot; only the feature data does (§III.B.2).
	if err := app.SetGlobal(GlobalImage, nil); err != nil {
		return err
	}
	app.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventFrontComplete})
	return nil
}

// handleRear is Fig 5's rear(): finish the DNN from the feature data and
// add the result to the DOM.
func handleRear(app *webapp.App, ev webapp.Event) error {
	rear, err := appModel(app, RearSuffix)
	if err != nil {
		return err
	}
	in, err := globalTensor(app, GlobalFeature, rear.InputShape())
	if err != nil {
		return err
	}
	out, err := rear.ForwardPrec(in, Quality(app))
	if err != nil {
		return fmt.Errorf("mlapp: inference_rear: %w", err)
	}
	return publishResult(app, out)
}

// handleInferenceBatch is the batched form of handleInference: one
// layer-major forward pass over every coalesced app's image. The edge
// scheduler only batches sessions whose models are byte-identical, so
// running all inputs through apps[0]'s model is exact.
func handleInferenceBatch(apps []*webapp.App, evs []webapp.Event) error {
	return runBatch(apps, "", "inference")
}

// handleRearBatch is the batched form of handleRear, coalescing partial
// offloads that share the same pre-sent rear model.
func handleRearBatch(apps []*webapp.App, evs []webapp.Event) error {
	return runBatch(apps, RearSuffix, "inference_rear")
}

func runBatch(apps []*webapp.App, suffix, what string) error {
	if len(apps) == 0 {
		return nil
	}
	model, err := appModel(apps[0], suffix)
	if err != nil {
		return err
	}
	global := GlobalImage
	if suffix == RearSuffix {
		global = GlobalFeature
	}
	ins := make([]*tensor.Tensor, len(apps))
	for i, app := range apps {
		if ins[i], err = globalTensor(app, global, model.InputShape()); err != nil {
			return err
		}
	}
	// The scheduler only coalesces byte-identical models, but each app's
	// quality tier is its own snapshotted global; a batch mixing tiers
	// would give some member the wrong precision, so only batch-execute
	// when every member agrees and fall back to per-app passes otherwise.
	prec := Quality(apps[0])
	for _, app := range apps[1:] {
		if Quality(app) != prec {
			for i, app := range apps {
				out, err := model.ForwardPrec(ins[i], Quality(app))
				if err != nil {
					return fmt.Errorf("mlapp: %s: %w", what, err)
				}
				if err := publishResult(app, out); err != nil {
					return err
				}
			}
			return nil
		}
	}
	outs, err := model.ForwardBatchPrec(ins, prec)
	if err != nil {
		return fmt.Errorf("mlapp: batched %s: %w", what, err)
	}
	for i, app := range apps {
		if err := publishResult(app, outs[i]); err != nil {
			return err
		}
	}
	return nil
}

// SetQuality selects the app's model quality tier. The empty string
// resets to the float32 default.
func SetQuality(app *webapp.App, prec nn.Precision) error {
	return webapp.SetQuality(app, prec)
}

// Quality reads the app's quality tier, defaulting to float32 when the
// global is missing, empty, or malformed.
func Quality(app *webapp.App) nn.Precision {
	return webapp.Quality(app)
}

func appModel(app *webapp.App, suffix string) (*nn.Network, error) {
	nameV, ok := app.Global(GlobalModelName)
	if !ok {
		return nil, errors.New("mlapp: modelName global missing")
	}
	name, ok := nameV.(string)
	if !ok {
		return nil, fmt.Errorf("mlapp: modelName global is %T", nameV)
	}
	model, ok := app.Model(name + suffix)
	if !ok {
		return nil, fmt.Errorf("mlapp: model %q not loaded", name+suffix)
	}
	return model, nil
}

func globalTensor(app *webapp.App, name string, shape []int) (*tensor.Tensor, error) {
	v, ok := app.Global(name)
	if !ok {
		return nil, fmt.Errorf("mlapp: global %q missing", name)
	}
	arr, ok := v.(webapp.Float32Array)
	if !ok {
		return nil, fmt.Errorf("mlapp: global %q is %T, want Float32Array", name, v)
	}
	t, err := tensor.FromSlice([]float32(arr), shape...)
	if err != nil {
		return nil, fmt.Errorf("mlapp: global %q: %w", name, err)
	}
	return t, nil
}

// publishResult writes the classification outcome into the DOM and globals,
// "adding the result text to the DOM-tree to update the screen".
func publishResult(app *webapp.App, out *tensor.Tensor) error {
	idx, _ := out.MaxIndex()
	label := fmt.Sprintf("class %d", idx)
	if lv, ok := app.Global(GlobalLabels); ok {
		if labels, ok := lv.([]webapp.Value); ok && idx >= 0 && idx < len(labels) {
			if s, ok := labels[idx].(string); ok {
				label = s
			}
		}
	}
	if node := app.DOM().Find(ResultID); node != nil {
		node.Text = label
	}
	if err := app.SetGlobal(GlobalResult, label); err != nil {
		return err
	}
	return app.SetGlobal(GlobalScores, webapp.Float32Array(out.Data()))
}

// Result returns the app's current result text, or "" if inference has not
// completed.
func Result(app *webapp.App) string {
	if v, ok := app.Global(GlobalResult); ok {
		if s, ok := v.(string); ok {
			return s
		}
	}
	return ""
}

// LoadImage dispatches the load event with the given pixels and runs it.
func LoadImage(app *webapp.App, img webapp.Float32Array) error {
	app.DispatchEvent(webapp.Event{Target: ButtonID, Type: EventLoad, Payload: img})
	if _, err := app.Run(1); err != nil {
		return err
	}
	return nil
}

module websnap

go 1.22
